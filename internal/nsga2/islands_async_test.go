package nsga2

import (
	"reflect"
	"testing"

	"tradeoff/internal/rng"
)

// asyncCfg builds an island config with the async flag set.
func asyncCfg(islands, interval, migrants, pop, workers int) IslandConfig {
	return IslandConfig{
		Islands:           islands,
		MigrationInterval: interval,
		Migrants:          migrants,
		Async:             true,
		Engine:            Config{PopulationSize: pop, Workers: workers},
	}
}

// frontsEqual compares two point lists bit for bit.
func frontsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// requireIslandsIdentical asserts two runs ended in the same state:
// merged fronts and every island's own front, bit for bit.
func requireIslandsIdentical(t *testing.T, a, b *Islands, label string) {
	t.Helper()
	if a.Generation() != b.Generation() {
		t.Fatalf("%s: generations %d vs %d", label, a.Generation(), b.Generation())
	}
	if !frontsEqual(a.FrontPoints(), b.FrontPoints()) {
		t.Fatalf("%s: merged fronts differ", label)
	}
	for i := range a.engines {
		if !frontsEqual(a.engines[i].FrontPoints(), b.engines[i].FrontPoints()) {
			t.Fatalf("%s: island %d fronts differ", label, i)
		}
	}
}

// TestAsyncIslandsMatchSync: the asynchronous logical-clock schedule
// must be bit-identical to barrier-synchronized stepping — populations,
// fronts, and the full telemetry sequence — for several ring sizes and
// engine worker counts. This is the island-scheduling analogue of
// TestWorkerCountInvariance: goroutine interleaving must never leak
// into results.
func TestAsyncIslandsMatchSync(t *testing.T) {
	e := newEval(t, 40)
	for _, k := range []int{1, 2, 3, 4} {
		for _, workers := range []int{1, 3} {
			cfg := asyncCfg(k, 4, 2, 8, workers)
			sync := cfg
			sync.Async = false

			a, err := NewIslands(e, cfg, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewIslands(e, sync, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			recA, recS := &recorder{}, &recorder{}
			a.SetObserver(recA)
			s.SetObserver(recS)
			a.Run(13) // 3 ticks (4, 8, 12) plus an off-tick tail
			s.Run(13)

			requireIslandsIdentical(t, a, s, "async vs sync")
			if !reflect.DeepEqual(recA.migrations, recS.migrations) {
				t.Fatalf("k=%d w=%d: migration sequences differ:\nasync %v\nsync  %v",
					k, workers, recA.migrations, recS.migrations)
			}
			if !reflect.DeepEqual(recA.gens, recS.gens) {
				t.Fatalf("k=%d w=%d: shard-stats sequences differ:\nasync %+v\nsync  %+v",
					k, workers, recA.gens, recS.gens)
			}
		}
	}
}

// TestAsyncIslandsWorkerInvariance: async results do not depend on the
// engines' internal evaluation parallelism.
func TestAsyncIslandsWorkerInvariance(t *testing.T) {
	e := newEval(t, 40)
	var base *Islands
	for i, workers := range []int{1, 2, 5} {
		is, err := NewIslands(e, asyncCfg(3, 5, 2, 8, workers), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		is.Run(17)
		if i == 0 {
			base = is
			continue
		}
		requireIslandsIdentical(t, base, is, "worker invariance")
	}
}

// TestAsyncIslandsSnapshotResume: pausing an asynchronous run at an
// arbitrary logical-clock point and resuming from the (JSON
// round-tripped) snapshot is bit-identical to never pausing, for
// multiple island counts and pause points — mid-interval, exactly on a
// migration tick, and after a single generation.
func TestAsyncIslandsSnapshotResume(t *testing.T) {
	e := newEval(t, 40)
	const total = 20
	for _, k := range []int{2, 3} {
		for _, pause := range []int{1, 7, 10} {
			cfg := asyncCfg(k, 5, 2, 8, 2)

			straight, err := NewIslands(e, cfg, rng.New(31))
			if err != nil {
				t.Fatal(err)
			}
			straight.Run(total)

			paused, err := NewIslands(e, cfg, rng.New(31))
			if err != nil {
				t.Fatal(err)
			}
			paused.Run(pause)
			raw, err := EncodeIslandsSnapshot(paused.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			snap, err := DecodeIslandsSnapshot(raw)
			if err != nil {
				t.Fatal(err)
			}
			// A fresh run with a different source: every bit of resumed
			// state must come from the snapshot, not the constructor.
			resumed, err := NewIslands(e, cfg, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if resumed.Generation() != pause {
				t.Fatalf("restored generation %d, want %d", resumed.Generation(), pause)
			}
			resumed.Run(total - pause)
			requireIslandsIdentical(t, straight, resumed, "snapshot resume")
		}
	}
}

// TestIslandsSnapshotValidation: mismatched shapes are rejected.
func TestIslandsSnapshotValidation(t *testing.T) {
	e := newEval(t, 20)
	cfg := asyncCfg(3, 5, 1, 6, 1)
	is, err := NewIslands(e, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	is.Run(2)
	snap := is.Snapshot()
	if len(snap.Islands) != 3 {
		t.Fatalf("snapshot has %d islands, want 3", len(snap.Islands))
	}

	two, err := NewIslands(e, asyncCfg(2, 5, 1, 6, 1), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := two.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot with the wrong island count")
	}
	if err := is.Restore(&IslandsSnapshot{Generation: 1, Islands: []*Snapshot{nil, nil, nil}}); err == nil {
		t.Fatal("restore accepted nil island snapshots")
	}
	if _, err := DecodeIslandsSnapshot([]byte(`{"generation":3,"islands":[]}`)); err == nil {
		t.Fatal("decode accepted an empty islands snapshot")
	}
	if _, err := DecodeIslandsSnapshot([]byte(`{`)); err == nil {
		t.Fatal("decode accepted malformed JSON")
	}
}

// TestIslandsShardStatsEvents: each migration tick emits one aggregated
// GenerationStats labeled "islands" summing the per-island cache and
// arena shards, after that tick's migration events.
func TestIslandsShardStatsEvents(t *testing.T) {
	e := newEval(t, 30)
	cfg := IslandConfig{
		Islands:           3,
		MigrationInterval: 4,
		Migrants:          2,
		Engine:            Config{PopulationSize: 6},
	}
	is, err := NewIslands(e, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	is.SetObserver(rec)
	is.Run(9) // ticks at 4 and 8

	if len(rec.gens) != 2 {
		t.Fatalf("%d shard-stats events, want 2", len(rec.gens))
	}
	for i, g := range rec.gens {
		if g.Label != "islands" {
			t.Fatalf("event %d label %q, want islands", i, g.Label)
		}
		if want := (i + 1) * 4; g.Generation != want {
			t.Fatalf("event %d at generation %d, want %d", i, g.Generation, want)
		}
		if g.Population != 6*3 {
			t.Fatalf("event %d population %d, want 18", i, g.Population)
		}
		// Per-tick work: every generation in the interval evaluates the
		// offspring of all three islands, so the counters must cover at
		// least interval × islands × population accounted offspring.
		if got := g.FullEvals + g.DeltaEvals + g.CacheHits; got < 4*3*6 {
			t.Fatalf("event %d accounts %d evaluations, want >= 72", i, got)
		}
		if g.CacheCapacity <= 0 || g.CacheSize <= 0 || g.CacheSize > g.CacheCapacity {
			t.Fatalf("event %d cache size/capacity %d/%d", i, g.CacheSize, g.CacheCapacity)
		}
		if g.ArenaSlots <= 0 || g.ArenaInUse <= 0 || g.ArenaInUse > g.ArenaSlots {
			t.Fatalf("event %d arena %d/%d", i, g.ArenaInUse, g.ArenaSlots)
		}
		if g.NumMachines != e.NumMachines() {
			t.Fatalf("event %d machines %d", i, g.NumMachines)
		}
	}
	// The aggregated cache capacity is the sum of three per-island
	// shards: each island defaults to 4×pop rounded up to a power of
	// two, so the sum is exactly 3 shards' worth.
	one, err := New(e, cfg.Engine, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(one.cache.slots); rec.gens[0].CacheCapacity != want {
		t.Fatalf("aggregated cache capacity %d, want %d (3 shards)", rec.gens[0].CacheCapacity, want)
	}
}
