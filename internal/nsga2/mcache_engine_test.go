package nsga2

import (
	"testing"

	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// TestMachineCacheBitIdentical is the machine-bucket cache's core
// contract: populations are bit-identical for every capacity (including
// disabled) under both kernels, generation by generation.
func TestMachineCacheBitIdentical(t *testing.T) {
	for _, kernel := range []sched.Kernel{sched.KernelTyped, sched.KernelScalar} {
		base := Config{PopulationSize: 16, Workers: 1, Kernel: kernel, MachineCacheCapacity: -1}
		ref := newEngine(t, 70, base, 5)
		others := make([]*Engine, 0, 4)
		for _, capacity := range []int{1, 8, 64, 0} {
			cfg := base
			cfg.MachineCacheCapacity = capacity
			others = append(others, newEngine(t, 70, cfg, 5))
		}
		for g := 0; g < 12; g++ {
			ref.Step()
			for _, eng := range others {
				eng.Step()
				comparePopulations(t, "mcache-capacity", ref, eng)
			}
		}
	}
}

// TestMachineCacheWorkerInvariance pins the serial-probe/serial-insert
// bracket of the machine-bucket cache: after the same run, not just the
// population but the cache's entire internal state — stats, live count,
// and every slot — must be identical for every worker count.
func TestMachineCacheWorkerInvariance(t *testing.T) {
	run := func(workers int) *Engine {
		eng, err := New(newEval(t, 60),
			Config{PopulationSize: 20, Workers: workers, MachineCacheCapacity: 256}, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(10)
		return eng
	}
	serial := run(1)
	if serial.mcache.stats.hits == 0 {
		t.Fatal("run produced no machine-cache hits; invariance check is vacuous")
	}
	for _, workers := range []int{2, 4, 7} {
		par := run(workers)
		comparePopulations(t, "mcache-worker-invariance", serial, par)
		if par.mcache.stats != serial.mcache.stats {
			t.Fatalf("workers=%d: machine-cache stats %+v diverged from serial %+v",
				workers, par.mcache.stats, serial.mcache.stats)
		}
		if par.mcache.live != serial.mcache.live {
			t.Fatalf("workers=%d: machine-cache live %d vs serial %d",
				workers, par.mcache.live, serial.mcache.live)
		}
		for i := range par.mcache.slots {
			ps, ss := &par.mcache.slots[i], &serial.mcache.slots[i]
			if ps.fp != ss.fp || ps.gen != ss.gen || ps.row != ss.row {
				t.Fatalf("workers=%d: machine-cache slot %d diverged", workers, i)
			}
		}
	}
}

// TestMachineCacheVerifyAcceptsHonestCache runs verify-on-hit for many
// generations: every memoized machine row is re-simulated and must
// match bitwise, so completing without a panic certifies the cache.
func TestMachineCacheVerifyAcceptsHonestCache(t *testing.T) {
	eng := newEngine(t, 50, Config{PopulationSize: 16, MachineCacheVerify: true}, 21)
	eng.Run(15)
	if eng.mcache.stats.hits == 0 {
		t.Fatal("verify run produced no machine-cache hits to check")
	}
}

// TestMachineCacheVerifyPanicsOnCorruptEntry corrupts a cached machine
// row and requires the verify path to catch the divergence.
func TestMachineCacheVerifyPanicsOnCorruptEntry(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 12, MachineCacheVerify: true}, 9)
	eng.Run(3)
	poisoned := 0
	for i := range eng.mcache.slots {
		if eng.mcache.slots[i].gen >= 0 {
			eng.mcache.slots[i].row.Utility += 1e6
			eng.mcache.slots[i].gen = int64(eng.generation)
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Fatal("no live machine-cache entries to poison")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("verify-on-hit did not panic on a corrupted machine-cache entry")
		}
	}()
	eng.Run(10)
}

// FuzzMachineCacheSnapshot drives snapshot/restore through arbitrary
// machine-cache configurations: an engine snapshotted mid-run and
// restored into a fresh engine — with a different seed, worker count,
// kernel, and machine-cache capacity — must finish bit-identical to the
// uninterrupted run, because the cache is pure memoization and restore
// starts it cold.
func FuzzMachineCacheSnapshot(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(10), uint8(0), uint8(3), uint8(1), false)
	f.Add(uint64(9), uint8(80), uint8(8), uint8(64), uint8(5), uint8(4), true)
	f.Add(uint64(4), uint8(20), uint8(6), uint8(255), uint8(7), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, tasksRaw, popRaw, capRaw, gensRaw, workersRaw uint8, scalar bool) {
		tasks := 2 + int(tasksRaw)%100
		pop := 2 * (1 + int(popRaw)%10)
		gens := int(gensRaw)%8 + 2
		half := gens / 2
		cfg := Config{PopulationSize: pop, Workers: 1 + int(workersRaw)%4}
		if scalar {
			cfg.Kernel = sched.KernelScalar
		}
		// Capacity sweeps -1 (disabled), 0 (default), and 1..64.
		cfg.MachineCacheCapacity = int(capRaw)%66 - 1

		full := newEngine(t, tasks, cfg, seed|1)
		full.Run(gens)

		interrupted := newEngine(t, tasks, cfg, seed|1)
		interrupted.Run(half)
		raw, err := EncodeSnapshot(interrupted.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		snap, err := DecodeSnapshot(raw)
		if err != nil {
			t.Fatal(err)
		}
		// The resumed engine flips kernel and capacity: neither may
		// change the population the run converges to.
		resumedCfg := cfg
		resumedCfg.Kernel = sched.KernelTyped
		if !scalar {
			resumedCfg.Kernel = sched.KernelScalar
		}
		resumedCfg.MachineCacheCapacity = -1 - resumedCfg.MachineCacheCapacity
		resumed := newEngine(t, tasks, resumedCfg, seed^0xdead)
		if err := resumed.Restore(snap); err != nil {
			t.Fatal(err)
		}
		resumed.Run(gens - half)
		comparePopulations(t, "mcache-snapshot", full, resumed)
	})
}
