package nsga2

import (
	"fmt"
	"sort"
	"sync"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// IslandConfig parameterizes an island-model run: several independent
// NSGA-II populations evolve in parallel (one goroutine per island) and
// periodically exchange elite chromosomes around a ring. Islands add
// coarse-grained parallelism on top of the engine's parallel fitness
// evaluation and preserve population diversity on large instances.
type IslandConfig struct {
	// Islands is the number of populations. Default 4.
	Islands int
	// MigrationInterval is the number of generations between migrations.
	// Default 25.
	MigrationInterval int
	// Migrants is the number of elites each island sends to its ring
	// neighbor per migration. Default 2.
	Migrants int
	// Engine configures every island (population size is per island).
	// Engine.Seeds are distributed round-robin across islands.
	Engine Config
}

func (c *IslandConfig) fillAndValidate() error {
	if c.Islands == 0 {
		c.Islands = 4
	}
	if c.MigrationInterval == 0 {
		c.MigrationInterval = 25
	}
	if c.Migrants == 0 {
		c.Migrants = 2
	}
	if c.Islands < 1 {
		return fmt.Errorf("nsga2: islands %d, want >= 1", c.Islands)
	}
	if c.MigrationInterval < 1 {
		return fmt.Errorf("nsga2: migration interval %d, want >= 1", c.MigrationInterval)
	}
	if c.Migrants < 0 {
		return fmt.Errorf("nsga2: migrants %d, want >= 0", c.Migrants)
	}
	return nil
}

// Islands is an island-model NSGA-II run.
type Islands struct {
	cfg        IslandConfig
	engines    []*Engine
	space      moea.Space
	generation int
	observer   obs.Observer
}

// SetObserver attaches (or, with nil, detaches) a telemetry observer.
// The island model emits only migration events: islands step in
// parallel goroutines, so forwarding their per-generation events would
// interleave nondeterministically, while the migration phase is serial
// and deterministic. Attach a per-engine observer for generation-level
// telemetry of a single deterministic population.
func (is *Islands) SetObserver(o obs.Observer) {
	is.observer = o
}

// NewIslands builds the islands, splitting the random source so each
// island evolves an independent deterministic stream and distributing
// any seeds round-robin.
func NewIslands(eval *sched.Evaluator, cfg IslandConfig, src *rng.Source) (*Islands, error) {
	if err := cfg.fillAndValidate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("nsga2: nil random source")
	}
	is := &Islands{cfg: cfg}
	for k := 0; k < cfg.Islands; k++ {
		ecfg := cfg.Engine
		// Round-robin seed distribution.
		var seeds []*sched.Allocation
		for si, s := range cfg.Engine.Seeds {
			if si%cfg.Islands == k {
				seeds = append(seeds, s)
			}
		}
		ecfg.Seeds = seeds
		eng, err := New(eval, ecfg, src.Split())
		if err != nil {
			return nil, fmt.Errorf("nsga2: island %d: %w", k, err)
		}
		is.engines = append(is.engines, eng)
	}
	is.space = is.engines[0].space
	return is, nil
}

// Generation returns the number of completed generations.
func (is *Islands) Generation() int { return is.generation }

// NumIslands returns the island count.
func (is *Islands) NumIslands() int { return len(is.engines) }

// Step advances every island by one generation in parallel, migrating
// elites around the ring at the configured interval.
func (is *Islands) Step() {
	var wg sync.WaitGroup
	for _, eng := range is.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Step()
		}(eng)
	}
	wg.Wait()
	is.generation++
	if is.cfg.Migrants > 0 && len(is.engines) > 1 && is.generation%is.cfg.MigrationInterval == 0 {
		is.migrate()
	}
}

// migrate sends each island's elites to its ring successor. Outbound
// elites are collected before any injection so migration order does not
// matter.
func (is *Islands) migrate() {
	k := len(is.engines)
	outbound := make([][]Individual, k)
	for i, eng := range is.engines {
		outbound[i] = eng.Elites(is.cfg.Migrants)
	}
	for i := range is.engines {
		dst := (i + 1) % k
		// Injection cannot fail: migrants come from a sibling engine on
		// the same evaluator.
		if err := is.engines[dst].Inject(outbound[i]); err != nil {
			panic(fmt.Sprintf("nsga2: ring migration failed: %v", err))
		}
		if is.observer != nil {
			is.observer.ObserveMigration(obs.MigrationEvent{
				Generation: is.generation,
				From:       i,
				To:         dst,
				Count:      len(outbound[i]),
			})
		}
	}
}

// Run advances the islands by the given number of generations.
func (is *Islands) Run(generations int) {
	for i := 0; i < generations; i++ {
		is.Step()
	}
}

// FrontPoints returns the merged rank-1 objective vectors across all
// islands: the union of island fronts filtered to its nondominated set,
// sorted by the first objective in improving order.
func (is *Islands) FrontPoints() [][]float64 {
	var union [][]float64
	for _, eng := range is.engines {
		union = append(union, eng.FrontPoints()...)
	}
	if len(union) == 0 {
		return nil
	}
	front := is.space.ParetoFront(union)
	out := make([][]float64, len(front))
	for i, idx := range front {
		out[i] = union[idx]
	}
	return out
}

// ParetoFront returns deep copies of the merged nondominated individuals
// across all islands, sorted by the first objective in improving order.
func (is *Islands) ParetoFront() []Individual {
	var union []Individual
	for _, eng := range is.engines {
		union = append(union, eng.ParetoFront()...)
	}
	if len(union) == 0 {
		return nil
	}
	points := make([][]float64, len(union))
	for i := range union {
		points[i] = union[i].Objectives
	}
	keep := is.space.ParetoFront(points)
	out := make([]Individual, len(keep))
	for i, idx := range keep {
		out[i] = union[idx]
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a].Objectives[0], out[b].Objectives[0]
		if is.space.Senses[0] == moea.Maximize {
			return x > y
		}
		return x < y
	})
	return out
}
