package nsga2

import (
	"fmt"
	"sync"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// IslandConfig parameterizes an island-model run: several independent
// NSGA-II populations evolve in parallel (one goroutine per island) and
// periodically exchange elite chromosomes around a ring. Islands add
// coarse-grained parallelism on top of the engine's parallel fitness
// evaluation and preserve population diversity on large instances.
type IslandConfig struct {
	// Islands is the number of populations. Default 4.
	Islands int
	// MigrationInterval is the number of generations between migrations.
	// Default 25.
	MigrationInterval int
	// Migrants is the number of elites each island sends to its ring
	// neighbor per migration. Default 2.
	Migrants int
	// Async selects asynchronous steady-state stepping for Run: each
	// island advances on its own goroutine under a logical-clock
	// migration schedule — it exchanges elites over buffered ring-edge
	// mailboxes whenever its local generation counter crosses the
	// migration interval — with no per-generation barrier, so one slow
	// island no longer stalls the others between migrations. Results
	// and emitted telemetry are bit-identical to synchronous stepping
	// regardless of goroutine interleaving (DESIGN.md §13). Step always
	// uses the synchronous barrier; only Run honors Async.
	Async bool
	// Engine configures every island (population size is per island).
	// Engine.Seeds are distributed round-robin across islands.
	Engine Config
}

func (c *IslandConfig) fillAndValidate() error {
	if c.Islands == 0 {
		c.Islands = 4
	}
	if c.MigrationInterval == 0 {
		c.MigrationInterval = 25
	}
	if c.Migrants == 0 {
		c.Migrants = 2
	}
	if c.Islands < 1 {
		return fmt.Errorf("nsga2: islands %d, want >= 1", c.Islands)
	}
	if c.MigrationInterval < 1 {
		return fmt.Errorf("nsga2: migration interval %d, want >= 1", c.MigrationInterval)
	}
	if c.Migrants < 0 {
		return fmt.Errorf("nsga2: migrants %d, want >= 0", c.Migrants)
	}
	return nil
}

// Normalized returns the configuration with the same defaults applied
// that NewIslands and NewIslandShard apply internally (island count,
// migration interval, migrant count, engine population). A distributed
// coordinator needs the normalized values to agree with its workers on
// the migration tick schedule and aggregated stats shape without
// re-implementing the defaulting rules.
func (c IslandConfig) Normalized() (IslandConfig, error) {
	if err := c.fillAndValidate(); err != nil {
		return c, err
	}
	c.Engine.fillDefaults()
	if err := c.Engine.validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Islands is an island-model NSGA-II run.
type Islands struct {
	cfg        IslandConfig
	engines    []*Engine
	space      moea.Space
	generation int
	observer   obs.Observer
	// aggBase holds the cross-island counter sums at the last emitted
	// shard-stats event, so each migration tick reports per-tick diffs.
	aggBase ShardTick
	// phase is the shared phase profiler (nil when profiling is off):
	// every engine records into the same timer via atomic adds, and the
	// island layer itself attributes ring-migration time to
	// PhaseMigration. health is the optional async-health gauge board.
	phase  *obs.PhaseTimer
	health *obs.IslandBoard
}

// SetObserver attaches (or, with nil, detaches) a telemetry observer.
// The island model emits migration events plus one aggregated
// shard-stats GenerationStats per migration tick (Label "islands",
// summing every island's fitness-cache, machine-cache, and arena
// counters): islands step in parallel goroutines, so forwarding their
// per-generation events would interleave nondeterministically, while
// the migration tick is a deterministic serialization point in both
// the synchronous and asynchronous modes. Attach a per-engine observer
// for generation-level telemetry of a single deterministic population.
func (is *Islands) SetObserver(o obs.Observer) {
	is.observer = o
	if o == nil {
		return
	}
	// Resync the aggregation baseline so pre-attach work (initial
	// evaluation, restores) is not attributed to the first tick.
	is.aggBase = is.sumShards()
}

// SetPhaseTimer attaches (or, with nil, detaches) a shared phase
// profiler: every island engine records its Step phases into t (atomic
// adds aggregate across the parallel islands), and the island layer
// attributes ring-migration time — including, in the asynchronous mode,
// the ring-edge mailbox wait — to PhaseMigration. The aggregated
// "islands" shard stats deliberately carry no per-tick phase split:
// phase time is wall time, and splitting it per tick would make the
// emitted telemetry timing-dependent, breaking the documented sync ≡
// async bit-identity. Read the run-level rollup from the timer instead.
func (is *Islands) SetPhaseTimer(t *obs.PhaseTimer) {
	is.phase = t
	for _, eng := range is.engines {
		eng.SetPhaseTimer(t)
	}
}

// SetHealth attaches (or, with nil, detaches) the async-island health
// board. The islands update mailbox-depth, tick, and cache-occupancy
// gauges at every migration tick in both stepping modes; gauges are
// monitoring data, outside the deterministic telemetry stream.
func (is *Islands) SetHealth(b *obs.IslandBoard) {
	is.health = b
}

// cacheOccupancy reads one engine's fitness-cache live-entry fraction
// (0 when memoization is disabled).
func cacheOccupancy(eng *Engine) float64 {
	if eng.cache == nil || len(eng.cache.slots) == 0 {
		return 0
	}
	return float64(eng.cache.live) / float64(len(eng.cache.slots))
}

// sumShards captures and sums every island's current counters.
func (is *Islands) sumShards() ShardTick {
	var agg ShardTick
	for _, eng := range is.engines {
		agg.Add(captureShard(eng, 0))
	}
	return agg
}

// emitShardStats diffs the aggregated counters against the previous
// tick's baseline and emits one GenerationStats labeled "islands"
// (assembled by ShardStatsEvent, shared with the distributed
// coordinator).
func (is *Islands) emitShardStats(gen int, agg ShardTick) {
	is.observer.ObserveGeneration(ShardStatsEvent(
		gen, is.engines[0].cfg.PopulationSize*len(is.engines),
		is.engines[0].eval.NumMachines(), agg, is.aggBase))
	is.aggBase = agg
}

// NewIslands builds the islands, splitting the random source so each
// island evolves an independent deterministic stream and distributing
// any seeds round-robin.
func NewIslands(eval *sched.Evaluator, cfg IslandConfig, src *rng.Source) (*Islands, error) {
	if err := cfg.fillAndValidate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("nsga2: nil random source")
	}
	is := &Islands{cfg: cfg}
	for k := 0; k < cfg.Islands; k++ {
		ecfg := cfg.Engine
		// Round-robin seed distribution.
		var seeds []*sched.Allocation
		for si, s := range cfg.Engine.Seeds {
			if si%cfg.Islands == k {
				seeds = append(seeds, s)
			}
		}
		ecfg.Seeds = seeds
		eng, err := New(eval, ecfg, src.Split())
		if err != nil {
			return nil, fmt.Errorf("nsga2: island %d: %w", k, err)
		}
		is.engines = append(is.engines, eng)
	}
	is.space = is.engines[0].space
	return is, nil
}

// Generation returns the number of completed generations.
func (is *Islands) Generation() int { return is.generation }

// NumIslands returns the island count.
func (is *Islands) NumIslands() int { return len(is.engines) }

// Step advances every island by one generation in parallel, migrating
// elites around the ring at the configured interval.
func (is *Islands) Step() {
	var wg sync.WaitGroup
	for _, eng := range is.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Step()
		}(eng)
	}
	wg.Wait()
	is.generation++
	if is.cfg.Migrants > 0 && len(is.engines) > 1 && is.generation%is.cfg.MigrationInterval == 0 {
		is.migrate()
	}
}

// migrate sends each island's elites to its ring successor. Outbound
// elites are collected before any injection so migration order does not
// matter.
func (is *Islands) migrate() {
	t0 := is.phase.Start()
	k := len(is.engines)
	outbound := make([][]Individual, k)
	for i, eng := range is.engines {
		outbound[i] = eng.Elites(is.cfg.Migrants)
	}
	for i := range is.engines {
		dst := (i + 1) % k
		// Injection cannot fail: migrants come from a sibling engine on
		// the same evaluator.
		if err := is.engines[dst].Inject(outbound[i]); err != nil {
			panic(fmt.Sprintf("nsga2: ring migration failed: %v", err))
		}
		if is.observer != nil {
			is.observer.ObserveMigration(obs.MigrationEvent{
				Generation: is.generation,
				From:       i,
				To:         dst,
				Count:      len(outbound[i]),
			})
		}
	}
	is.phase.Record(obs.PhaseMigration, t0)
	for i, eng := range is.engines {
		// Synchronous exchanges drain every edge inline, so depth is 0.
		is.health.SetMailboxDepth(i, 0)
		is.health.SetCacheOccupancy(i, cacheOccupancy(eng))
		is.health.SetTick(i, is.generation)
	}
	if is.observer != nil {
		is.emitShardStats(is.generation, is.sumShards())
	}
}

// Run advances the islands by the given number of generations:
// barrier-synchronized Steps by default, the asynchronous logical-clock
// schedule when cfg.Async is set. Both modes end in the same state and
// emit the same telemetry.
//
//detlint:pure
func (is *Islands) Run(generations int) {
	if is.cfg.Async {
		is.runAsync(generations)
		return
	}
	for i := 0; i < generations; i++ {
		is.Step()
	}
}

// runAsync advances every island on its own goroutine with no
// per-generation barrier. Coordination happens only at logical-clock
// migration ticks — generations that are multiples of the migration
// interval. At its tick an island sends the elites of its own
// post-step state into its out-edge mailbox, then blocks until its
// predecessor's same-tick migrants arrive, and injects them
// (send-before-receive keeps the ring deadlock-free; the buffered edge
// lets a fast island run one full interval ahead of its successor).
//
// Determinism: island i's population after tick T depends only on its
// own rng stream and the migrants it received at ticks ≤ T, which are
// computed from its predecessor's pre-injection state at those ticks —
// a recursion over deterministic per-island histories that never
// involves goroutine timing. The synchronous mode computes exactly the
// same values (it also collects every outbound elite set before any
// injection), so the two modes are bit-identical (DESIGN.md §13).
// Telemetry is captured per island at its own ticks and emitted after
// the run in (generation, from) order, matching the synchronous event
// sequence.
func (is *Islands) runAsync(generations int) {
	if generations <= 0 {
		return
	}
	k := len(is.engines)
	interval := is.cfg.MigrationInterval
	start := is.generation
	target := start + generations
	firstTick, nticks := RingTicks(start, target, interval, is.cfg.Migrants, k)
	abort := newRingAbort()
	mail := make([]Mailbox, k)
	global := make([]int, k)
	for i := 0; i < k; i++ {
		mail[i] = newChanMailbox(abort)
		global[i] = i
	}
	ins := make([]Mailbox, k)
	for i := 0; i < k; i++ {
		ins[i] = mail[(i+k-1)%k]
	}
	recs, err := runRing(is.engines, global, ins, mail, abort,
		start, target, interval, is.cfg.Migrants, nticks, is.phase, is.health)
	if err != nil {
		// Channel-backed edges cannot fail; any error here is a bug.
		panic(fmt.Sprintf("nsga2: in-process ring failed: %v", err))
	}
	is.generation = target
	if is.observer == nil {
		return
	}
	// Emit per tick: the ring's migration events in from-ascending
	// order, then the aggregated shard stats — the same serialization
	// the synchronous mode produces inline.
	for t := 0; t < nticks; t++ {
		gen := firstTick + t*interval
		var agg ShardTick
		for i := 0; i < k; i++ {
			is.observer.ObserveMigration(obs.MigrationEvent{
				Generation: gen,
				From:       i,
				To:         (i + 1) % k,
				Count:      recs[i][t].Migrants,
			})
			agg.Add(recs[i][t])
		}
		is.emitShardStats(gen, agg)
	}
}

// FrontPoints returns the merged rank-1 objective vectors across all
// islands: the union of island fronts filtered to its nondominated set,
// sorted by the first objective in improving order.
func (is *Islands) FrontPoints() [][]float64 {
	var union [][]float64
	for _, eng := range is.engines {
		union = append(union, eng.FrontPoints()...)
	}
	if len(union) == 0 {
		return nil
	}
	front := is.space.ParetoFront(union)
	out := make([][]float64, len(front))
	for i, idx := range front {
		out[i] = union[idx]
	}
	return out
}

// ParetoFront returns deep copies of the merged nondominated individuals
// across all islands, sorted by the first objective in improving order.
func (is *Islands) ParetoFront() []Individual {
	var union []Individual
	for _, eng := range is.engines {
		union = append(union, eng.ParetoFront()...)
	}
	return MergeFronts(is.space, union)
}
