package nsga2

import "tradeoff/internal/sched"

// Genotype fingerprinting for the fitness-memoization layer (see
// DESIGN.md §11). A fingerprint is a 64-bit hash of a chromosome's
// machine-assignment and scheduling-order genes: equal genotypes always
// produce equal fingerprints, so a fingerprint match identifies a
// candidate duplicate whose evaluation can be reused. The splitmix
// primitives (constants and finalizer) are shared with the evaluation
// layer's machine-bucket fingerprints — sched.FPGamma, sched.FPMul1,
// sched.FPMul2, sched.Mix64 — compile-time constants only, no
// hash/maphash (whose per-process seed would make cache behaviour
// differ between runs) and no other runtime-seeded state, so
// fingerprints are bit-identical across processes, platforms, and
// worker counts.

// fingerprint hashes the allocation's genotype. Each gene packs into one
// 64-bit word — machine assignment (shifted so Dropped stays
// representable) in the high half, scheduling order in the low half — and
// is absorbed xor-multiply style. Four independent lanes cover strided
// gene positions so the multiply chains overlap instead of serializing;
// the lanes then pass through the splitmix64 finalizer and fold together
// with the length, so chromosomes of different lengths or with swapped
// gene positions never collide structurally.
//
//detlint:hotpath
func fingerprint(a *sched.Allocation) uint64 {
	machine, order := a.Machine, a.Order
	n := len(machine)
	g := uint64(sched.FPGamma)
	h0 := sched.Mix64(g)
	h1 := sched.Mix64(g * 2) // weyl-sequence multiples; wrapping is intended
	h2 := sched.Mix64(g * 3)
	h3 := sched.Mix64(g * 4)
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := uint64(machine[i]+1)<<32 | uint64(uint32(order[i]))
		v1 := uint64(machine[i+1]+1)<<32 | uint64(uint32(order[i+1]))
		v2 := uint64(machine[i+2]+1)<<32 | uint64(uint32(order[i+2]))
		v3 := uint64(machine[i+3]+1)<<32 | uint64(uint32(order[i+3]))
		h0 = (h0 ^ v0) * sched.FPMul1
		h1 = (h1 ^ v1) * sched.FPMul1
		h2 = (h2 ^ v2) * sched.FPMul1
		h3 = (h3 ^ v3) * sched.FPMul1
	}
	for ; i < n; i++ {
		h0 = (h0 ^ (uint64(machine[i]+1)<<32 | uint64(uint32(order[i])))) * sched.FPMul1
	}
	h := sched.Mix64(h0)
	h = sched.Mix64(h ^ h1)
	h = sched.Mix64(h ^ h2)
	h = sched.Mix64(h ^ h3)
	return sched.Mix64(h ^ uint64(n))
}
