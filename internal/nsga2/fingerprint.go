package nsga2

import "tradeoff/internal/sched"

// Genotype fingerprinting for the fitness-memoization layer (see
// DESIGN.md §11). A fingerprint is a 64-bit hash of a chromosome's
// machine-assignment and scheduling-order genes: equal genotypes always
// produce equal fingerprints, so a fingerprint match identifies a
// candidate duplicate whose evaluation can be reused. The mixing is
// splitmix-style — xor-multiply absorption with the splitmix64
// finalizer — built from compile-time constants only: no hash/maphash
// (whose per-process seed would make cache behaviour differ between
// runs) and no other runtime-seeded state, so fingerprints are
// bit-identical across processes, platforms, and worker counts.

const (
	// fpGamma is the splitmix64 increment ("golden gamma"); the lane
	// seeds below are its first four weyl-sequence multiples, mixed.
	fpGamma = 0x9e3779b97f4a7c15
	// fpM1/fpM2 are the splitmix64 finalizer multipliers; fpM1 doubles
	// as the per-gene absorption multiplier.
	fpM1 = 0xbf58476d1ce4e5b9
	fpM2 = 0x94d049bb133111eb
)

// mix64 is the splitmix64 finalizer: an invertible avalanche over all 64
// bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * fpM1
	z = (z ^ (z >> 27)) * fpM2
	return z ^ (z >> 31)
}

// fingerprint hashes the allocation's genotype. Each gene packs into one
// 64-bit word — machine assignment (shifted so Dropped stays
// representable) in the high half, scheduling order in the low half — and
// is absorbed xor-multiply style. Four independent lanes cover strided
// gene positions so the multiply chains overlap instead of serializing;
// the lanes then pass through the splitmix64 finalizer and fold together
// with the length, so chromosomes of different lengths or with swapped
// gene positions never collide structurally.
//
//detlint:hotpath
func fingerprint(a *sched.Allocation) uint64 {
	machine, order := a.Machine, a.Order
	n := len(machine)
	g := uint64(fpGamma)
	h0 := mix64(g)
	h1 := mix64(g * 2) // weyl-sequence multiples; wrapping is intended
	h2 := mix64(g * 3)
	h3 := mix64(g * 4)
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := uint64(machine[i]+1)<<32 | uint64(uint32(order[i]))
		v1 := uint64(machine[i+1]+1)<<32 | uint64(uint32(order[i+1]))
		v2 := uint64(machine[i+2]+1)<<32 | uint64(uint32(order[i+2]))
		v3 := uint64(machine[i+3]+1)<<32 | uint64(uint32(order[i+3]))
		h0 = (h0 ^ v0) * fpM1
		h1 = (h1 ^ v1) * fpM1
		h2 = (h2 ^ v2) * fpM1
		h3 = (h3 ^ v3) * fpM1
	}
	for ; i < n; i++ {
		h0 = (h0 ^ (uint64(machine[i]+1)<<32 | uint64(uint32(order[i])))) * fpM1
	}
	h := mix64(h0)
	h = mix64(h ^ h1)
	h = mix64(h ^ h2)
	h = mix64(h ^ h3)
	return mix64(h ^ uint64(n))
}
