package nsga2

import (
	"tradeoff/internal/sched"
)

// Fitness memoization (see DESIGN.md §11): an open-addressing hash table
// from genotype fingerprint to evaluation outcome — objective values
// plus the per-machine contribution rows delta evaluation inherits from.
// Selection, elitism, and island migration constantly reproduce exact
// clones of surviving chromosomes; a cache hit hands a clone its
// evaluation for the cost of a memcpy instead of a simulation.
//
// Determinism: the cache is only ever probed, touched, and filled from
// the engine's serial phases, in offspring index order, so its entire
// state evolves identically for every worker count. Eviction is
// clock-free — stamped with the engine's generation counter, never wall
// time — and bounded: a fixed probe window per fingerprint, with the
// oldest-stamped slot in the window evicted on overflow (ties broken by
// probe order). Because a cached outcome is bit-identical to what
// re-evaluating the same genotype would produce, populations are
// bit-identical for ANY capacity, including a disabled cache — the only
// observable difference is time saved (absent a 64-bit fingerprint
// collision, which the verify-on-hit debug mode exists to rule out).

// fitSlot is one cache entry. contrib is an owned buffer drawn from the
// engine arena at construction and recycled across evictions for the
// lifetime of the cache.
type fitSlot struct {
	fp      uint64
	gen     int64 // generation stamp of last touch; -1 = empty
	ev      sched.Evaluation
	contrib *sched.Contribs
}

// cacheStats is a snapshot of the cache's cumulative counters, diffed
// per generation for telemetry (the DeltaStats pattern).
type cacheStats struct {
	hits, misses, evicts uint64
}

func (s *cacheStats) sub(o cacheStats) {
	s.hits -= o.hits
	s.misses -= o.misses
	s.evicts -= o.evicts
}

// fitCache is the memoization table: power-of-two open addressing with a
// short probe window.
type fitCache struct {
	slots  []fitSlot
	mask   uint64
	window int
	live   int
	stats  cacheStats
}

// fitCacheWindow bounds the linear probe per fingerprint; longer probes
// trade lookup cost for fewer forced evictions.
const fitCacheWindow = 8

// newFitCache returns a cache with capacity rounded up to a power of
// two. Capacity must be >= 1 (the engine maps "disabled" to a nil
// cache). Every slot's contribution buffer is drawn from the arena up
// front: a filled table is the steady state anyway — each miss inserts,
// so the slots populate within a few generations — and pre-drawing
// keeps the generation loop allocation-free from the first Step rather
// than after a coupon-collector fill phase.
func newFitCache(capacity int, ar *arena) *fitCache {
	size := 1
	for size < capacity {
		size <<= 1
	}
	c := &fitCache{
		slots:  make([]fitSlot, size),
		mask:   uint64(size - 1),
		window: fitCacheWindow,
	}
	if c.window > size {
		c.window = size
	}
	for i := range c.slots {
		c.slots[i].gen = -1
		c.slots[i].contrib = ar.getContrib()
	}
	return c
}

// lookup returns the slot index holding fp, or -1. Serial phases only.
//
//detlint:hotpath
func (c *fitCache) lookup(fp uint64) int {
	for o := 0; o < c.window; o++ {
		i := (fp + uint64(o)) & c.mask
		s := &c.slots[i]
		if s.gen >= 0 && s.fp == fp {
			return int(i)
		}
	}
	return -1
}

// touch refreshes the slot's generation stamp so hot entries outlive
// cold ones under the oldest-stamp eviction rule.
func (c *fitCache) touch(slot int, gen int64) { c.slots[slot].gen = gen }

// insert stores (fp → ev, contrib) stamped with gen, copying contrib
// into the slot's own pre-drawn buffer. If the probe window is full,
// the oldest-stamped slot in the window is evicted; ties break toward
// the earliest probe position, so the replacement choice is
// deterministic. Serial phases only.
//
//detlint:hotpath
func (c *fitCache) insert(fp uint64, gen int64, ev sched.Evaluation, contrib *sched.Contribs) {
	empty, oldest := -1, -1
	var oldestGen int64
	for o := 0; o < c.window; o++ {
		i := int((fp + uint64(o)) & c.mask)
		s := &c.slots[i]
		if s.gen < 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if s.fp == fp {
			// Duplicate genotype evaluated twice in one generation (both
			// missed before either inserted): refresh in place.
			s.gen = gen
			s.ev = ev
			s.contrib.CopyFrom(contrib)
			return
		}
		if oldest < 0 || s.gen < oldestGen {
			oldest, oldestGen = i, s.gen
		}
	}
	dst := empty
	if dst < 0 {
		dst = oldest
		c.stats.evicts++
	} else {
		c.live++
	}
	s := &c.slots[dst]
	s.fp = fp
	s.gen = gen
	s.ev = ev
	s.contrib.CopyFrom(contrib)
}
