package nsga2

import (
	"testing"

	"tradeoff/internal/heuristics"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// TestCacheEngineMatchesUncached is the memoization bit-identity
// property: an engine with the fitness cache enabled (at any capacity,
// with or without verify-on-hit) and an engine with the cache disabled,
// driven by the same rng seed, must produce identical populations
// generation by generation — across repair strategies, selection rules,
// worker counts, seeded populations, and cache capacities small enough
// to force constant eviction.
func TestCacheEngineMatchesUncached(t *testing.T) {
	cases := []struct {
		name  string
		tasks int
		cfg   Config
		seed  bool
	}{
		{name: "default-capacity", tasks: 60, cfg: Config{PopulationSize: 20}},
		{name: "tiny-capacity", tasks: 60, cfg: Config{PopulationSize: 20, CacheCapacity: 2}},
		{name: "mid-capacity", tasks: 60, cfg: Config{PopulationSize: 20, CacheCapacity: 16}},
		{name: "verify-on-hit", tasks: 60, cfg: Config{PopulationSize: 20, CacheVerify: true}},
		{name: "shuffle-repair", tasks: 60, cfg: Config{PopulationSize: 20, Repair: ShuffleRepair}},
		{name: "tournament", tasks: 60, cfg: Config{PopulationSize: 20, Selection: TournamentSelection}},
		{name: "workers", tasks: 60, cfg: Config{PopulationSize: 20, Workers: 4}},
		{name: "seeded", tasks: 80, cfg: Config{PopulationSize: 16}, seed: true},
		{name: "full-eval-mode", tasks: 40, cfg: Config{PopulationSize: 12, Evaluation: FullEvaluation}},
		{name: "high-mutation", tasks: 40, cfg: Config{PopulationSize: 12, MutationRate: 0.9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkEngine := func(cacheCapacity int, verify bool) *Engine {
				e := newEval(t, tc.tasks)
				cfg := tc.cfg
				cfg.CacheCapacity = cacheCapacity
				cfg.CacheVerify = verify
				if tc.seed {
					cfg.Seeds = []*sched.Allocation{heuristics.BuildMinEnergy(e)}
				}
				eng, err := New(e, cfg, rng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			capacity := tc.cfg.CacheCapacity
			if capacity == 0 {
				capacity = 4 * tc.cfg.PopulationSize
			}
			cached := mkEngine(capacity, tc.cfg.CacheVerify)
			uncached := mkEngine(-1, false)
			if (cached.cache == nil) != false {
				t.Fatal("cached engine built without a cache")
			}
			if uncached.cache != nil {
				t.Fatal("negative CacheCapacity did not disable the cache")
			}
			comparePopulations(t, tc.name+"/gen0", cached, uncached)
			for gen := 1; gen <= 12; gen++ {
				cached.Step()
				uncached.Step()
				comparePopulations(t, tc.name, cached, uncached)
			}
			// A cache big enough to hold the population must see hits
			// (elitist clones recur constantly); a tiny or thrashing one
			// may legitimately never hit, and shuffle repair re-randomizes
			// order genes so exact clones stop recurring — in those cases
			// bit-identity above is the whole test.
			if hits := cached.cache.stats.hits; hits == 0 &&
				capacity >= tc.cfg.PopulationSize && tc.cfg.Repair != ShuffleRepair {
				t.Fatalf("%s: 12 generations produced zero cache hits — the memoized path went unexercised", tc.name)
			}
		})
	}
}

// TestCacheCapacityInvariance runs one engine per capacity across the
// whole disabled → tiny → default spectrum and requires every population
// sequence to match the disabled baseline: capacity must only change
// time, never results.
func TestCacheCapacityInvariance(t *testing.T) {
	capacities := []int{-1, 1, 2, 3, 8, 50, 0 /* default */}
	engines := make([]*Engine, len(capacities))
	for i, capacity := range capacities {
		eng, err := New(newEval(t, 50), Config{PopulationSize: 14, CacheCapacity: capacity}, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	for gen := 1; gen <= 10; gen++ {
		for _, eng := range engines {
			eng.Step()
		}
		for i := 1; i < len(engines); i++ {
			comparePopulations(t, "capacity-sweep", engines[0], engines[i])
		}
	}
}

// TestCacheEngineMatchesUncachedWithInject covers genotypes entering the
// population mid-run: injected individuals must fingerprint and cache
// like bred ones.
func TestCacheEngineMatchesUncachedWithInject(t *testing.T) {
	cached := newEngine(t, 50, Config{PopulationSize: 16}, 5)
	uncached := newEngine(t, 50, Config{PopulationSize: 16, CacheCapacity: -1}, 5)
	cached.Run(5)
	uncached.Run(5)
	inject := []Individual{
		{Alloc: cached.eval.RandomAllocation(rng.New(99))},
		{Alloc: heuristics.BuildMinEnergy(cached.eval)},
	}
	if err := cached.Inject(inject); err != nil {
		t.Fatal(err)
	}
	if err := uncached.Inject(inject); err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 8; gen++ {
		cached.Step()
		uncached.Step()
		comparePopulations(t, "post-inject", cached, uncached)
	}
}

// TestCacheEngineMatchesUncachedAfterRestore covers snapshot/restore: a
// restored cached engine must continue bit-for-bit like an uncached one
// restored from the same snapshot.
func TestCacheEngineMatchesUncachedAfterRestore(t *testing.T) {
	src := newEngine(t, 40, Config{PopulationSize: 12}, 8)
	src.Run(4)
	snap := src.Snapshot()

	cached := newEngine(t, 40, Config{PopulationSize: 12, CacheCapacity: 8}, 8)
	uncached := newEngine(t, 40, Config{PopulationSize: 12, CacheCapacity: -1}, 8)
	if err := cached.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := uncached.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 8; gen++ {
		cached.Step()
		uncached.Step()
		comparePopulations(t, "post-restore", cached, uncached)
	}
}

// TestCacheWorkerInvariance pins the serial-probe/serial-insert bracket:
// the cache's internal state — not just the population — must be
// identical for every worker count after the same run.
func TestCacheWorkerInvariance(t *testing.T) {
	run := func(workers int) *Engine {
		eng, err := New(newEval(t, 60), Config{PopulationSize: 20, Workers: workers, CacheCapacity: 32}, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(10)
		return eng
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 7} {
		par := run(workers)
		comparePopulations(t, "worker-invariance", serial, par)
		if par.cache.stats != serial.cache.stats {
			t.Fatalf("workers=%d: cache stats %+v diverged from serial %+v",
				workers, par.cache.stats, serial.cache.stats)
		}
		if par.cache.live != serial.cache.live {
			t.Fatalf("workers=%d: cache live %d vs serial %d", workers, par.cache.live, serial.cache.live)
		}
		for i := range par.cache.slots {
			ps, ss := &par.cache.slots[i], &serial.cache.slots[i]
			if ps.fp != ss.fp || ps.gen != ss.gen || ps.ev != ss.ev {
				t.Fatalf("workers=%d: cache slot %d diverged", workers, i)
			}
		}
	}
}

// TestCacheVerifyAcceptsHonestCache runs verify-on-hit for many
// generations: every memoized outcome is re-simulated and must match, so
// completing without a panic certifies the cached payloads.
func TestCacheVerifyAcceptsHonestCache(t *testing.T) {
	eng := newEngine(t, 50, Config{PopulationSize: 16, CacheVerify: true}, 21)
	eng.Run(15)
	if eng.cache.stats.hits == 0 {
		t.Fatal("verify run produced no hits to check")
	}
}

// TestCacheVerifyPanicsOnCorruptEntry corrupts a cached payload and
// requires the verify path to catch the divergence — proof the debug
// flag actually re-simulates rather than trusting the cache.
func TestCacheVerifyPanicsOnCorruptEntry(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 12, CacheVerify: true}, 9)
	eng.Run(3)
	poisoned := 0
	for i := range eng.cache.slots {
		if eng.cache.slots[i].gen >= 0 {
			eng.cache.slots[i].ev.Utility += 1e6
			// Keep the stamp fresh so the poisoned entries survive
			// eviction long enough to be hit.
			eng.cache.slots[i].gen = int64(eng.generation)
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Fatal("no live cache entries to poison")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("verify-on-hit did not panic on a corrupted cache entry")
		}
	}()
	eng.Run(10)
}

// FuzzCacheEngine drives arbitrary configurations through the
// cached-vs-uncached population equality check, varying capacity,
// repair, selection, worker count, and generation count.
func FuzzCacheEngine(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(10), uint8(0), false, false, uint8(3), uint8(1))
	f.Add(uint64(9), uint8(90), uint8(8), uint8(2), true, true, uint8(5), uint8(4))
	f.Add(uint64(4), uint8(20), uint8(6), uint8(255), false, true, uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, tasksRaw, popRaw, capRaw uint8, shuffle, tournament bool, gens, workersRaw uint8) {
		tasks := 2 + int(tasksRaw)%100
		pop := 2 * (1 + int(popRaw)%10)
		cfg := Config{PopulationSize: pop, Workers: 1 + int(workersRaw)%4}
		if shuffle {
			cfg.Repair = ShuffleRepair
		}
		if tournament {
			cfg.Selection = TournamentSelection
		}
		cachedCfg := cfg
		// Capacity sweeps 1..64 and 0 (the default) via the raw byte.
		cachedCfg.CacheCapacity = int(capRaw) % 65
		uncachedCfg := cfg
		uncachedCfg.CacheCapacity = -1
		cached := newEngine(t, tasks, cachedCfg, seed|1)
		uncached := newEngine(t, tasks, uncachedCfg, seed|1)
		for g := 0; g < int(gens)%10+1; g++ {
			cached.Step()
			uncached.Step()
		}
		comparePopulations(t, "fuzz", cached, uncached)
	})
}
