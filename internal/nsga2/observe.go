package nsga2

import (
	"sort"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/sched"
)

// Observer attachment. The engine's telemetry path is designed so that
// an attached observer can never change results: it runs after survivor
// selection, draws nothing from any rng stream, and hands the observer
// borrow-only views of engine-owned recycled buffers. The disabled cost
// is a single nil check in Step.

// indicatorMargin pads the automatic hypervolume reference point beyond
// the first observed front (fraction of the per-objective range), so
// later fronts that degrade slightly on one objective still register.
const indicatorMargin = 0.1

// SetObserver attaches (or, with nil, detaches) a telemetry observer.
// An indicator kernel is created on first attach, its hypervolume
// reference derived from the current front, and the current front is
// primed as the epsilon baseline — so the first observed generation's
// epsilon measures progress over the pre-attach population rather than
// reporting a first-observation zero. Evaluation-counter baselines are
// resynced so pre-attach work (initial population, restores) is not
// attributed to the first observed generation.
func (e *Engine) SetObserver(o obs.Observer) {
	e.observer = o
	if o == nil {
		return
	}
	if e.kernel == nil {
		e.kernel = obs.NewAutoIndicatorKernel(indicatorMargin)
		e.kernel.Prime(e.gatherFront())
	}
	e.statsBase = e.sessionStats()
	if e.cache != nil {
		e.cacheBase = e.cache.stats
	}
	if e.mcache != nil {
		e.mcacheBase = e.mcache.stats
	}
}

// SetPhaseTimer attaches (or, with nil, detaches) a phase profiler.
// Step's phase brackets record into it; when an observer is also
// attached, each generation's phase-time deltas are emitted in
// GenerationStats.PhaseNanos. The timer never touches rng streams, so
// profiled runs stay bit-identical to unprofiled ones. One timer may be
// shared across the engines of an island model — per-generation deltas
// stay coherent because island engines carry no engine-level observer.
func (e *Engine) SetPhaseTimer(t *obs.PhaseTimer) {
	e.phase = t
	e.phaseBase = t.Totals()
}

// SetIndicatorReference replaces the indicator kernel with one using the
// explicit hypervolume reference point ref = [utility, energy], priming
// it with the current front. Call before or after SetObserver; fronts
// observed afterwards are measured against ref.
func (e *Engine) SetIndicatorReference(ref []float64) {
	e.kernel = obs.NewIndicatorKernel(ref)
	e.kernel.Prime(e.gatherFront())
}

// sessionStats sums the cumulative work counters of every evaluation
// session.
func (e *Engine) sessionStats() sched.DeltaStats {
	var sum sched.DeltaStats
	for _, s := range e.sessions {
		sum.Add(s.Stats())
	}
	return sum
}

// gatherFront collects the rank-1 objective vectors into the recycled
// frontObs buffer, sorted by descending first objective under the
// problem's sense (matching FrontPoints order). The returned slice and
// the vectors it holds are borrowed from the engine.
//
//detlint:hotpath
func (e *Engine) gatherFront() [][]float64 {
	e.frontObs = e.frontObs[:0]
	for i := range e.pop {
		if e.pop[i].Rank == 1 {
			e.frontObs = append(e.frontObs, e.pop[i].Objectives)
		}
	}
	e.frontOrd.pts = e.frontObs
	e.frontOrd.maximize = e.space.Senses[0] == moea.Maximize
	sort.Stable(&e.frontOrd)
	e.frontOrd.pts = nil
	return e.frontObs
}

// notifyGeneration assembles and emits the per-generation telemetry
// event: the sorted rank-1 front, this generation's evaluation-kernel
// work (cumulative session counters diffed against the previous
// snapshot), the dirty-machine distribution the variation phase
// recorded, and the convergence indicators. Everything lives in
// engine-owned recycled buffers; the event is valid only during the
// ObserveGeneration call.
//
//detlint:hotpath
func (e *Engine) notifyGeneration() {
	front := e.gatherFront()
	cum := e.sessionStats()
	gen := cum
	gen.Sub(e.statsBase)
	e.statsBase = cum
	var cgen cacheStats
	var cacheSize, cacheCap int
	if e.cache != nil {
		ccum := e.cache.stats
		cgen = ccum
		cgen.sub(e.cacheBase)
		e.cacheBase = ccum
		cacheSize, cacheCap = e.cache.live, len(e.cache.slots)
	}
	var mgen cacheStats
	var mcacheSize, mcacheCap int
	if e.mcache != nil {
		mcum := e.mcache.stats
		mgen = mcum
		mgen.sub(e.mcacheBase)
		e.mcacheBase = mcum
		mcacheSize, mcacheCap = e.mcache.live, len(e.mcache.slots)
	}
	arenaInUse, arenaSlots := e.arena.occupancy()
	var phases obs.PhaseTotals
	if e.phase != nil {
		tot := e.phase.Totals()
		for p := range tot {
			phases[p] = tot[p] - e.phaseBase[p]
		}
		e.phaseBase = tot
	}
	var ind obs.Indicators
	if e.kernel != nil {
		ind = e.kernel.Update(front)
	} else {
		ind.FrontSize = len(front)
	}
	e.observer.ObserveGeneration(obs.GenerationStats{
		Generation:            e.generation,
		Population:            e.cfg.PopulationSize,
		Front:                 front,
		FullEvals:             int(gen.FullEvals),
		DeltaEvals:            int(gen.DeltaEvals),
		CacheHits:             int(cgen.hits),
		CacheMisses:           int(cgen.misses),
		CacheEvictions:        int(cgen.evicts),
		CacheSize:             cacheSize,
		CacheCapacity:         cacheCap,
		ArenaInUse:            arenaInUse,
		ArenaSlots:            arenaSlots,
		MachinesSimulated:     int(gen.MachinesSimulated),
		MachinesInherited:     int(gen.MachinesInherited),
		MachineCacheHits:      int(mgen.hits),
		MachineCacheMisses:    int(mgen.misses),
		MachineCacheEvictions: int(mgen.evicts),
		MachineCacheSize:      mcacheSize,
		MachineCacheCapacity:  mcacheCap,
		TypedTasks:            int(gen.TypedTasks),
		TypedRuns:             int(gen.TypedRuns),
		DirtyCounts:           e.dirtyN,
		NumMachines:           e.eval.NumMachines(),
		PhaseNanos:            phases,
		Indicators:            ind,
	})
}

// frontSorter stably orders borrowed objective vectors by the first
// objective (descending under Maximize, ascending under Minimize), ties
// by the second ascending — without a capturing closure.
type frontSorter struct {
	pts      [][]float64
	maximize bool
}

func (s *frontSorter) Len() int { return len(s.pts) }

func (s *frontSorter) Less(a, b int) bool {
	pa, pb := s.pts[a], s.pts[b]
	if pa[0] != pb[0] {
		if s.maximize {
			return pa[0] > pb[0]
		}
		return pa[0] < pb[0]
	}
	return pa[1] < pb[1]
}

func (s *frontSorter) Swap(a, b int) { s.pts[a], s.pts[b] = s.pts[b], s.pts[a] }
