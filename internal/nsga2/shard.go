package nsga2

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// Ring-edge mailboxes and the island-shard runner. The asynchronous
// logical-clock schedule (DESIGN.md §13) only ever touches a ring edge
// through the Mailbox interface, so the same stepping loop drives both
// the in-process island model (channel-backed edges) and a distributed
// shard of the ring whose boundary edges are carried over a wire by
// internal/dist (DESIGN.md §15).

// Mailbox is one directed ring edge of the island model: at each
// logical migration tick the sending island delivers exactly one elite
// batch and the receiving island consumes exactly one. Implementations
// must preserve per-edge FIFO order; the in-process implementation
// buffers one delivery so a fast island can run a full migration
// interval ahead of its successor.
type Mailbox interface {
	// Send delivers one tick's elites to the edge, blocking while the
	// previous delivery is still unconsumed.
	Send(elites []Individual) error
	// Recv blocks until the predecessor's same-tick elites arrive.
	Recv() ([]Individual, error)
	// Depth reports currently queued deliveries, for health gauges only
	// (0 when the transport cannot observe its queue).
	Depth() int
}

// errRingAborted is the secondary failure islands observe when another
// island of the same run has already failed its ring edge.
var errRingAborted = errors.New("nsga2: ring migration aborted by a sibling island")

// ringAbort broadcasts a ring-wide cancellation so channel-backed edges
// cannot block forever after a wire-backed boundary edge fails.
type ringAbort struct {
	once sync.Once
	ch   chan struct{}
}

func newRingAbort() *ringAbort { return &ringAbort{ch: make(chan struct{})} }

func (a *ringAbort) trip() { a.once.Do(func() { close(a.ch) }) }

// chanMailbox is the in-process ring edge: a one-deep channel plus the
// run's abort broadcast.
type chanMailbox struct {
	ch    chan []Individual
	abort *ringAbort
}

func newChanMailbox(a *ringAbort) *chanMailbox {
	return &chanMailbox{ch: make(chan []Individual, 1), abort: a}
}

//detlint:hotpath
func (m *chanMailbox) Send(elites []Individual) error {
	select {
	case m.ch <- elites:
		return nil
	case <-m.abort.ch:
		return errRingAborted
	}
}

//detlint:hotpath
func (m *chanMailbox) Recv() ([]Individual, error) {
	select {
	case elites := <-m.ch:
		return elites, nil
	case <-m.abort.ch:
		return nil, errRingAborted
	}
}

func (m *chanMailbox) Depth() int { return len(m.ch) }

// ShardTick is one island's cumulative counters captured at a logical
// migration tick (or the cross-island sum of them). The flat exported
// form is what internal/dist carries over the wire, so a distributed
// coordinator can aggregate worker shards into the same "islands"
// telemetry the in-process model emits.
type ShardTick struct {
	// Sess is the engine's cumulative evaluation-session counters.
	Sess sched.DeltaStats
	// Fitness-cache cumulative counters and current occupancy.
	CacheHits, CacheMisses, CacheEvictions uint64
	CacheSize, CacheCapacity               int
	// Machine-bucket cache cumulative counters and current occupancy.
	MachineCacheHits, MachineCacheMisses, MachineCacheEvictions uint64
	MachineCacheSize, MachineCacheCapacity                      int
	// Arena occupancy at the tick.
	ArenaInUse, ArenaSlots int
	// Migrants is the elite count this island sent at the tick (not
	// summed by Add: aggregated sums report per-edge counts separately).
	Migrants int
}

// Add accumulates o into t (sizes and capacities sum across shards;
// Migrants stays per-island).
//
//detlint:hotpath
func (t *ShardTick) Add(o ShardTick) {
	t.Sess.Add(o.Sess)
	t.CacheHits += o.CacheHits
	t.CacheMisses += o.CacheMisses
	t.CacheEvictions += o.CacheEvictions
	t.MachineCacheHits += o.MachineCacheHits
	t.MachineCacheMisses += o.MachineCacheMisses
	t.MachineCacheEvictions += o.MachineCacheEvictions
	t.CacheSize += o.CacheSize
	t.CacheCapacity += o.CacheCapacity
	t.MachineCacheSize += o.MachineCacheSize
	t.MachineCacheCapacity += o.MachineCacheCapacity
	t.ArenaInUse += o.ArenaInUse
	t.ArenaSlots += o.ArenaSlots
}

// captureShard reads one engine's cumulative counters. In async runs
// each island captures its own shard on its own goroutine; the values
// depend only on that island's deterministic history, never on
// interleaving.
//
//detlint:hotpath
func captureShard(eng *Engine, sent int) ShardTick {
	ts := ShardTick{Sess: eng.sessionStats(), Migrants: sent}
	if eng.cache != nil {
		ts.CacheHits = eng.cache.stats.hits
		ts.CacheMisses = eng.cache.stats.misses
		ts.CacheEvictions = eng.cache.stats.evicts
		ts.CacheSize, ts.CacheCapacity = eng.cache.live, len(eng.cache.slots)
	}
	if eng.mcache != nil {
		ts.MachineCacheHits = eng.mcache.stats.hits
		ts.MachineCacheMisses = eng.mcache.stats.misses
		ts.MachineCacheEvictions = eng.mcache.stats.evicts
		ts.MachineCacheSize, ts.MachineCacheCapacity = eng.mcache.live, len(eng.mcache.slots)
	}
	ts.ArenaInUse, ts.ArenaSlots = eng.arena.occupancy()
	return ts
}

// ShardStatsEvent diffs the aggregated cross-island counters against
// the previous tick's baseline and assembles the GenerationStats event
// the island model emits per migration tick (Label "islands"). The
// front and indicator fields stay empty: a merged front at an interior
// tick is not observable in the asynchronous mode, and all stepping
// modes — synchronous, asynchronous, distributed — must emit identical
// sequences.
func ShardStatsEvent(gen, population, numMachines int, agg, base ShardTick) obs.GenerationStats {
	diff := agg.Sess
	diff.Sub(base.Sess)
	return obs.GenerationStats{
		Label:                 "islands",
		Generation:            gen,
		Population:            population,
		FullEvals:             int(diff.FullEvals),
		DeltaEvals:            int(diff.DeltaEvals),
		MachinesSimulated:     int(diff.MachinesSimulated),
		MachinesInherited:     int(diff.MachinesInherited),
		TypedTasks:            int(diff.TypedTasks),
		TypedRuns:             int(diff.TypedRuns),
		CacheHits:             int(agg.CacheHits - base.CacheHits),
		CacheMisses:           int(agg.CacheMisses - base.CacheMisses),
		CacheEvictions:        int(agg.CacheEvictions - base.CacheEvictions),
		CacheSize:             agg.CacheSize,
		CacheCapacity:         agg.CacheCapacity,
		MachineCacheHits:      int(agg.MachineCacheHits - base.MachineCacheHits),
		MachineCacheMisses:    int(agg.MachineCacheMisses - base.MachineCacheMisses),
		MachineCacheEvictions: int(agg.MachineCacheEvictions - base.MachineCacheEvictions),
		MachineCacheSize:      agg.MachineCacheSize,
		MachineCacheCapacity:  agg.MachineCacheCapacity,
		ArenaInUse:            agg.ArenaInUse,
		ArenaSlots:            agg.ArenaSlots,
		NumMachines:           numMachines,
	}
}

// RingTicks returns the logical migration ticks in (start, target]:
// the first tick and the tick count. Migration is disabled entirely
// (0 ticks) when the ring has a single island or sends no migrants.
// Shared with internal/dist, whose coordinator and workers must agree
// on the tick schedule without exchanging it.
func RingTicks(start, target, interval, migrants, islands int) (firstTick, nticks int) {
	firstTick = (start/interval + 1) * interval
	if migrants > 0 && islands > 1 {
		for g := firstTick; g <= target; g += interval {
			nticks++
		}
	}
	return firstTick, nticks
}

// runRing advances a set of islands under the asynchronous
// logical-clock schedule: every island steps on its own goroutine with
// no per-generation barrier, and at each logical migration tick sends
// the elites of its own post-step state into its out edge before
// blocking on its in edge (send-before-receive keeps the ring
// deadlock-free). global[i] is island i's position in the full ring
// (used only for health gauges); recs[i][t] captures island i's
// counters at its t-th tick. A mailbox error aborts the whole ring and
// is reported from the lowest-indexed failing island.
func runRing(engines []*Engine, global []int, in, out []Mailbox, abort *ringAbort,
	start, target, interval, migrants, nticks int,
	phase *obs.PhaseTimer, health *obs.IslandBoard) ([][]ShardTick, error) {
	n := len(engines)
	recs := make([][]ShardTick, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		recs[i] = make([]ShardTick, nticks)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, gi := engines[i], global[i]
			t := 0
			for g := start + 1; g <= target; g++ {
				eng.Step()
				if nticks == 0 || g%interval != 0 {
					continue
				}
				// Elites reflect this island's own post-step,
				// pre-injection state, exactly as in the synchronous
				// collect-then-inject phase. The PhaseMigration bracket
				// includes the ring-edge wait — in the async mode that
				// wait IS the migration cost.
				t0 := phase.Start()
				elites := eng.Elites(migrants)
				health.SetMailboxDepth(gi, out[i].Depth()+1)
				if err := out[i].Send(elites); err != nil {
					errs[i] = err
					abort.trip()
					return
				}
				inbound, err := in[i].Recv()
				if err != nil {
					errs[i] = err
					abort.trip()
					return
				}
				if err := eng.Inject(inbound); err != nil {
					panic(fmt.Sprintf("nsga2: ring migration failed: %v", err))
				}
				phase.Record(obs.PhaseMigration, t0)
				health.SetMailboxDepth(gi, out[i].Depth())
				health.SetCacheOccupancy(gi, cacheOccupancy(eng))
				health.SetTick(gi, g)
				recs[i][t] = captureShard(eng, len(elites))
				t++
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, errRingAborted) {
			return nil, fmt.Errorf("nsga2: island %d: %w", global[i], err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("nsga2: island %d: %w", global[i], err)
		}
	}
	return recs, nil
}

// IslandShard is a contiguous slice [Lo, Hi) of an island-model ring,
// run inside one process while the rest of the ring lives elsewhere.
// Interior ring edges are in-process channels; the two boundary edges
// (into island Lo, out of island Hi-1) are whatever Mailbox the caller
// supplies — internal/dist carries them over a socket. A shard covering
// the whole ring wires its own wrap edge and is equivalent to
// Islands.Run in async mode.
type IslandShard struct {
	cfg        IslandConfig
	engines    []*Engine
	lo, hi     int
	space      moea.Space
	generation int
}

// NewIslandShard builds the engines for the ring slice [lo, hi) of a
// cfg.Islands-island ring. The random source is split once per ring
// position in global order and engine seeds are distributed round-robin
// by global island index — exactly as NewIslands does — so every shard
// partition of the same ring, including the trivial one-shard
// partition, evolves bit-identical islands.
func NewIslandShard(eval *sched.Evaluator, cfg IslandConfig, src *rng.Source, lo, hi int) (*IslandShard, error) {
	if err := cfg.fillAndValidate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("nsga2: nil random source")
	}
	if lo < 0 || hi > cfg.Islands || lo >= hi {
		return nil, fmt.Errorf("nsga2: shard range [%d, %d) outside ring of %d islands", lo, hi, cfg.Islands)
	}
	s := &IslandShard{cfg: cfg, lo: lo, hi: hi}
	for k := 0; k < cfg.Islands; k++ {
		// Every split is consumed even for islands outside the shard, so
		// the in-shard streams match the single-process run.
		sub := src.Split()
		if k < lo || k >= hi {
			continue
		}
		ecfg := cfg.Engine
		var seeds []*sched.Allocation
		for si, sd := range cfg.Engine.Seeds {
			if si%cfg.Islands == k {
				seeds = append(seeds, sd)
			}
		}
		ecfg.Seeds = seeds
		eng, err := New(eval, ecfg, sub)
		if err != nil {
			return nil, fmt.Errorf("nsga2: island %d: %w", k, err)
		}
		s.engines = append(s.engines, eng)
	}
	s.space = s.engines[0].space
	return s, nil
}

// Lo returns the shard's first global island index.
func (s *IslandShard) Lo() int { return s.lo }

// Hi returns one past the shard's last global island index.
func (s *IslandShard) Hi() int { return s.hi }

// Generation returns the number of completed generations.
func (s *IslandShard) Generation() int { return s.generation }

// Run advances the shard's islands by the given number of generations
// under the asynchronous logical-clock schedule. in feeds island Lo's
// boundary edge and out drains island Hi-1's; both may be nil when the
// shard covers the whole ring (the wrap edge is wired internally), and
// both are ignored when migration is disabled. The returned records
// hold each island's counters at each logical tick, for the
// coordinator's aggregated telemetry.
func (s *IslandShard) Run(generations int, in, out Mailbox) ([][]ShardTick, error) {
	if generations <= 0 {
		return nil, nil
	}
	n := s.hi - s.lo
	start := s.generation
	target := start + generations
	_, nticks := RingTicks(start, target, s.cfg.MigrationInterval, s.cfg.Migrants, s.cfg.Islands)
	abort := newRingAbort()
	ins := make([]Mailbox, n)
	outs := make([]Mailbox, n)
	global := make([]int, n)
	for li := 0; li < n; li++ {
		global[li] = s.lo + li
	}
	for li := 0; li+1 < n; li++ {
		m := newChanMailbox(abort)
		outs[li], ins[li+1] = m, m
	}
	switch {
	case s.lo == 0 && s.hi == s.cfg.Islands:
		m := newChanMailbox(abort)
		outs[n-1], ins[0] = m, m
	case nticks == 0:
		// Migration disabled: the boundary edges are never touched.
	case in == nil || out == nil:
		return nil, fmt.Errorf("nsga2: shard [%d, %d) of %d islands needs boundary mailboxes", s.lo, s.hi, s.cfg.Islands)
	default:
		ins[0], outs[n-1] = in, out
	}
	recs, err := runRing(s.engines, global, ins, outs, abort,
		start, target, s.cfg.MigrationInterval, s.cfg.Migrants, nticks, nil, nil)
	if err != nil {
		return nil, err
	}
	s.generation = target
	return recs, nil
}

// Baselines captures every shard island's current cumulative counters,
// in global island order. The distributed coordinator sums baselines
// across workers to seed its telemetry diffs, mirroring
// Islands.SetObserver's baseline resync.
func (s *IslandShard) Baselines() []ShardTick {
	out := make([]ShardTick, len(s.engines))
	for i, eng := range s.engines {
		out[i] = captureShard(eng, 0)
	}
	return out
}

// Fronts returns each shard island's rank-1 front (deep copies), in
// global island order. Concatenating all shards' fronts in shard order
// reproduces the union Islands.ParetoFront builds before merging.
func (s *IslandShard) Fronts() [][]Individual {
	out := make([][]Individual, len(s.engines))
	for i, eng := range s.engines {
		out[i] = eng.ParetoFront()
	}
	return out
}

// Snapshots captures every shard island's engine snapshot, in global
// island order. Like Islands.Snapshot, it is only valid at Run
// boundaries, where every ring edge is provably drained.
func (s *IslandShard) Snapshots() []*Snapshot {
	out := make([]*Snapshot, len(s.engines))
	for i, eng := range s.engines {
		out[i] = eng.Snapshot()
	}
	return out
}

// Restore resets the shard to the given islands-level generation and
// per-island snapshots (one per shard island, in global island order).
func (s *IslandShard) Restore(generation int, snaps []*Snapshot) error {
	if len(snaps) != len(s.engines) {
		return fmt.Errorf("nsga2: shard restore has %d snapshots, want %d", len(snaps), len(s.engines))
	}
	for i, sub := range snaps {
		if sub == nil {
			return fmt.Errorf("nsga2: island snapshot %d is nil", s.lo+i)
		}
		if err := s.engines[i].Restore(sub); err != nil {
			return fmt.Errorf("nsga2: island %d: %w", s.lo+i, err)
		}
	}
	s.generation = generation
	return nil
}

// MergeFronts filters a union of per-island fronts to its nondominated
// set and sorts it by the first objective in improving order — the
// merge step of Islands.ParetoFront, shared with the distributed
// coordinator so both paths return bit-identical fronts.
func MergeFronts(space moea.Space, union []Individual) []Individual {
	if len(union) == 0 {
		return nil
	}
	points := make([][]float64, len(union))
	for i := range union {
		points[i] = union[i].Objectives
	}
	keep := space.ParetoFront(points)
	out := make([]Individual, len(keep))
	for i, idx := range keep {
		out[i] = union[idx]
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a].Objectives[0], out[b].Objectives[0]
		if space.Senses[0] == moea.Maximize {
			return x > y
		}
		return x < y
	})
	return out
}
