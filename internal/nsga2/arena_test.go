package nsga2

import (
	"testing"

	"tradeoff/internal/sched"
)

// TestArenaChunkSlots pins the genotype growth quantum: byte-bounded by
// arenaChunkBytes, never below 4 slots, never above the demand hint.
func TestArenaChunkSlots(t *testing.T) {
	ar := &arena{batch: 200}
	cases := []struct {
		stride, want int
	}{
		{64, 200},                 // tiny genomes: demand hint caps the chunk
		{4096, 200},               // 4k tasks: byte budget (256) still above hint
		{204800, 5},               // 200k tasks: ~1.6 MB/slot ⇒ 5-slot chunks
		{1 << 20, 4},              // 1M tasks: floor of 4 slots
		{arenaChunkBytes * 2, 4},  // absurd stride still yields the floor
		{arenaChunkBytes / 80, 8}, // exactly 10 slots of budget… clamped math
	}
	for _, tc := range cases {
		got := ar.allocChunkSlots(tc.stride)
		if got < 4 || got > ar.batch {
			t.Fatalf("stride %d: chunk %d outside [4, %d]", tc.stride, got, ar.batch)
		}
		bytesPerSlot := tc.stride * 8
		if got > 4 && got < ar.batch && got*bytesPerSlot > arenaChunkBytes {
			t.Fatalf("stride %d: chunk %d slots = %d bytes exceeds budget", tc.stride, got, got*bytesPerSlot)
		}
		if tc.stride == 1<<20 && got != 4 {
			t.Fatalf("1M-gene stride: chunk %d, want floor 4", got)
		}
	}
}

// TestArenaChunkedGrowth: drawing past one chunk carves additional
// chunks without touching existing slots, recycled slots are reused
// before any new chunk is carved, and occupancy tracks draws exactly.
func TestArenaChunkedGrowth(t *testing.T) {
	eval := newEval(t, 50)
	ar := &arena{}
	ar.init(eval, 2, 10)

	var drawn []*allocHolder
	for i := 0; i < 25; i++ {
		a := ar.getAlloc()
		// Stamp every gene so cross-slot aliasing would be caught below.
		for k := range a.Machine {
			a.Machine[k] = int32(i)
		}
		drawn = append(drawn, &allocHolder{a, i})
	}
	if ar.allocChunks != 3 {
		t.Fatalf("allocChunks = %d after 25 draws of 10-slot chunks, want 3", ar.allocChunks)
	}
	if ar.allocSlots != 30 {
		t.Fatalf("allocSlots = %d, want 30", ar.allocSlots)
	}
	for _, h := range drawn {
		for k := range h.a.Machine {
			if h.a.Machine[k] != int32(h.stamp) {
				t.Fatalf("slot stamped %d reads %d at gene %d: chunks alias or moved",
					h.stamp, h.a.Machine[k], k)
			}
		}
	}
	inUse, total := ar.occupancy()
	if inUse != 25 || total != 30 {
		t.Fatalf("occupancy %d/%d, want 25/30", inUse, total)
	}
	// Recycle everything, draw the full carved count again: steady state
	// must not grow.
	for _, h := range drawn {
		ar.putAlloc(h.a)
	}
	for i := 0; i < 30; i++ {
		ar.getAlloc()
	}
	if ar.allocChunks != 3 || ar.allocSlots != 30 {
		t.Fatalf("steady-state redraw grew the arena to %d chunks / %d slots",
			ar.allocChunks, ar.allocSlots)
	}
	// One more draw crosses the carved capacity: exactly one new chunk.
	ar.getAlloc()
	if ar.allocChunks != 4 || ar.allocSlots != 40 {
		t.Fatalf("overflow draw carved %d chunks / %d slots, want 4/40",
			ar.allocChunks, ar.allocSlots)
	}
}

type allocHolder struct {
	a     *sched.Allocation
	stamp int
}

// TestArenaEngineChunks: a live engine's first generation carves its
// steady-state demand in whole chunks and stays flat afterwards.
func TestArenaEngineChunks(t *testing.T) {
	eng := newEngine(t, 50, Config{PopulationSize: 12}, 3)
	eng.Run(3)
	chunks, slots := eng.arena.allocChunks, eng.arena.allocSlots
	if chunks == 0 || slots == 0 {
		t.Fatal("engine carved no arena chunks")
	}
	eng.Run(10)
	if eng.arena.allocChunks != chunks || eng.arena.allocSlots != slots {
		t.Fatalf("steady-state run grew arena %d→%d chunks, %d→%d slots",
			chunks, eng.arena.allocChunks, slots, eng.arena.allocSlots)
	}
}
