package nsga2

import (
	"testing"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
)

// recorder deep-copies every event: GenerationStats hands out borrowed
// buffers that are only valid during the callback.
type recorder struct {
	gens       []obs.GenerationStats
	fronts     [][][]float64
	migrations []obs.MigrationEvent
	runs       []obs.RunEvent
}

func (r *recorder) ObserveGeneration(g obs.GenerationStats) {
	front := make([][]float64, len(g.Front))
	for i, p := range g.Front {
		front[i] = append([]float64(nil), p...)
	}
	g.Front = nil
	g.DirtyCounts = append([]int(nil), g.DirtyCounts...)
	r.gens = append(r.gens, g)
	r.fronts = append(r.fronts, front)
}

func (r *recorder) ObserveMigration(m obs.MigrationEvent) { r.migrations = append(r.migrations, m) }

func (r *recorder) ObserveRun(e obs.RunEvent) { r.runs = append(r.runs, e) }

func TestObserverGenerationEvents(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 23)
	rec := &recorder{}
	eng.SetObserver(rec)
	eng.Run(5)

	if len(rec.gens) != 5 {
		t.Fatalf("%d generation events, want 5", len(rec.gens))
	}
	machines := eng.eval.NumMachines()
	for i, g := range rec.gens {
		if g.Generation != i+1 {
			t.Fatalf("event %d: generation %d, want %d", i, g.Generation, i+1)
		}
		if g.Population != 10 {
			t.Fatalf("event %d: population %d", i, g.Population)
		}
		// Every offspring is accounted for exactly once: evaluated fully,
		// by delta inheritance, or served from the fitness cache.
		if g.FullEvals+g.DeltaEvals+g.CacheHits != 10 {
			t.Fatalf("event %d: %d full + %d delta + %d cached, want 10 total",
				i, g.FullEvals, g.DeltaEvals, g.CacheHits)
		}
		if g.CacheHits+g.CacheMisses != 10 {
			t.Fatalf("event %d: %d hits + %d misses, want 10 probes", i, g.CacheHits, g.CacheMisses)
		}
		if g.CacheCapacity <= 0 || g.CacheSize < 0 || g.CacheSize > g.CacheCapacity {
			t.Fatalf("event %d: cache size %d / capacity %d", i, g.CacheSize, g.CacheCapacity)
		}
		if g.ArenaSlots <= 0 || g.ArenaInUse <= 0 || g.ArenaInUse > g.ArenaSlots {
			t.Fatalf("event %d: arena %d in use of %d slots", i, g.ArenaInUse, g.ArenaSlots)
		}
		// Each simulation-backed evaluation accounts for every machine:
		// simulated, inherited from the parent by fingerprint match, or
		// served from the machine-bucket cache. Chromosome-cache hits
		// touch none.
		wantMachines := (g.FullEvals + g.DeltaEvals) * machines
		if g.MachinesSimulated+g.MachinesInherited+g.MachineCacheHits != wantMachines {
			t.Fatalf("event %d: %d simulated + %d inherited + %d bucket-cached machines, want %d",
				i, g.MachinesSimulated, g.MachinesInherited, g.MachineCacheHits, wantMachines)
		}
		// Every machine neither inherited nor bucket-cached was probed
		// and missed, then simulated.
		if g.MachineCacheMisses != g.MachinesSimulated {
			t.Fatalf("event %d: %d machine-cache misses vs %d simulated machines",
				i, g.MachineCacheMisses, g.MachinesSimulated)
		}
		// The typed kernel (the default) walks every simulated task at
		// least one run per machine, never more runs than tasks.
		if g.TypedRuns > g.TypedTasks {
			t.Fatalf("event %d: %d typed runs exceed %d typed tasks", i, g.TypedRuns, g.TypedTasks)
		}
		if g.NumMachines != machines {
			t.Fatalf("event %d: NumMachines %d, want %d", i, g.NumMachines, machines)
		}
		if len(g.DirtyCounts) != 10 {
			t.Fatalf("event %d: %d dirty counts, want one per offspring", i, len(g.DirtyCounts))
		}
		for _, d := range g.DirtyCounts {
			if d < 0 || d > machines {
				t.Fatalf("event %d: dirty count %d outside [0, %d]", i, d, machines)
			}
		}
		front := rec.fronts[i]
		if len(front) == 0 || g.Indicators.FrontSize != len(front) {
			t.Fatalf("event %d: front size %d vs %d points", i, g.Indicators.FrontSize, len(front))
		}
		// Front sorted by descending utility (the first objective is
		// maximized), ties by ascending energy.
		for j := 1; j < len(front); j++ {
			if front[j][0] > front[j-1][0] {
				t.Fatalf("event %d: front not sorted by descending utility at %d", i, j)
			}
		}
		if g.Indicators.Hypervolume < 0 {
			t.Fatalf("event %d: negative hypervolume", i)
		}
	}
	// The kernel is primed on the pre-attach front, so every epsilon is a
	// real front-to-front measurement; hypervolume never decreases under
	// elitist survivor selection with a fixed auto reference.
	for i := 1; i < len(rec.gens); i++ {
		if rec.gens[i].Indicators.Hypervolume < rec.gens[i-1].Indicators.Hypervolume {
			t.Fatalf("hypervolume decreased at event %d: %v -> %v",
				i, rec.gens[i-1].Indicators.Hypervolume, rec.gens[i].Indicators.Hypervolume)
		}
	}
}

func TestObserverDoesNotChangeResults(t *testing.T) {
	eval := newEval(t, 30)
	newEng := func() *Engine {
		eng, err := New(eval, Config{PopulationSize: 12}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain, observed := newEng(), newEng()
	observed.SetObserver(&recorder{})
	plain.Run(20)
	observed.Run(20)
	pp, op := plain.Population(), observed.Population()
	for i := range pp {
		if pp[i].Rank != op[i].Rank || pp[i].Crowding != op[i].Crowding {
			t.Fatalf("individual %d rank/crowding diverged with observer attached", i)
		}
		for m := range pp[i].Objectives {
			if pp[i].Objectives[m] != op[i].Objectives[m] {
				t.Fatalf("individual %d objective %d diverged: %v vs %v",
					i, m, pp[i].Objectives[m], op[i].Objectives[m])
			}
		}
		for g := range pp[i].Alloc.Machine {
			if pp[i].Alloc.Machine[g] != op[i].Alloc.Machine[g] || pp[i].Alloc.Order[g] != op[i].Alloc.Order[g] {
				t.Fatalf("individual %d gene %d diverged", i, g)
			}
		}
	}
}

func TestSetIndicatorReference(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 10}, 31)
	rec := &recorder{}
	eng.SetObserver(rec)
	ref := []float64{0, 1e9} // utility floor 0, generous energy ceiling
	eng.SetIndicatorReference(ref)
	eng.Run(1)
	if len(rec.gens) != 1 {
		t.Fatalf("%d events, want 1", len(rec.gens))
	}
	sp := moea.UtilityEnergySpace()
	want := sp.Hypervolume2D(rec.fronts[0], ref)
	if got := rec.gens[0].Indicators.Hypervolume; got != want {
		t.Fatalf("hypervolume %v under explicit reference, want %v", got, want)
	}
}

func TestObserverDetach(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 10}, 37)
	rec := &recorder{}
	eng.SetObserver(rec)
	eng.Run(2)
	eng.SetObserver(nil)
	eng.Run(2)
	if len(rec.gens) != 2 {
		t.Fatalf("%d events after detach, want 2", len(rec.gens))
	}
}

// TestRunCheckpointsGenerationZero pins the checkpoint contract's edge:
// checkpoint 0 on a fresh engine reports the initial population's front
// without stepping, and negative checkpoints are rejected.
func TestRunCheckpointsGenerationZero(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 41)
	var gens []int
	var sizes []int
	err := eng.RunCheckpoints([]int{0, 3}, func(g int, front []Individual) {
		gens = append(gens, g)
		sizes = append(sizes, len(front))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 0 || gens[1] != 3 {
		t.Fatalf("checkpoint generations %v, want [0 3]", gens)
	}
	if sizes[0] == 0 {
		t.Fatal("generation-0 checkpoint reported an empty front")
	}
	if eng.Generation() != 3 {
		t.Fatalf("engine at generation %d after checkpoints, want 3", eng.Generation())
	}
	if err := eng.RunCheckpoints([]int{-1}, func(int, []Individual) {}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
}

// TestSnapshotRestoreWithObserver checks that telemetry resumes cleanly
// across a snapshot/restore cycle: generation numbers continue from the
// snapshot and the restore's own re-evaluation work is not billed to
// the first post-restore generation.
func TestSnapshotRestoreWithObserver(t *testing.T) {
	eval := newEval(t, 30)
	engA, err := New(eval, Config{PopulationSize: 10}, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	recA := &recorder{}
	engA.SetObserver(recA)
	engA.Run(3)
	snap := engA.Snapshot()

	engB, err := New(eval, Config{PopulationSize: 10}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	recB := &recorder{}
	engB.SetObserver(recB)
	if err := engB.Restore(snap); err != nil {
		t.Fatal(err)
	}
	engB.Run(2)

	if len(recB.gens) != 2 {
		t.Fatalf("%d post-restore events, want 2", len(recB.gens))
	}
	for i, g := range recB.gens {
		if g.Generation != 4+i {
			t.Fatalf("post-restore event %d: generation %d, want %d", i, g.Generation, 4+i)
		}
		if g.FullEvals+g.DeltaEvals+g.CacheHits != 10 {
			t.Fatalf("post-restore event %d: %d full + %d delta evals + %d cache hits, want 10 — restore work leaked into the generation",
				i, g.FullEvals, g.DeltaEvals, g.CacheHits)
		}
	}

	// The restored engine continues the original run bit for bit, so its
	// events must match a reference engine that never snapshotted.
	engC, err := New(eval, Config{PopulationSize: 10}, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	recC := &recorder{}
	engC.SetObserver(recC)
	engC.Run(5)
	for i := range recB.fronts {
		want := recC.fronts[3+i]
		got := recB.fronts[i]
		if len(got) != len(want) {
			t.Fatalf("post-restore front %d: %d points vs %d in uninterrupted run", i, len(got), len(want))
		}
		for j := range got {
			if got[j][0] != want[j][0] || got[j][1] != want[j][1] {
				t.Fatalf("post-restore front %d point %d: %v vs %v", i, j, got[j], want[j])
			}
		}
	}
}
