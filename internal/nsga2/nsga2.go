// Package nsga2 adapts the Nondominated Sorting Genetic Algorithm II
// (Deb et al., 2002) to the paper's bi-objective resource allocation
// problem (§IV-D).
//
// A gene is a task: it carries the machine the task executes on and the
// task's global scheduling order. A chromosome is a complete resource
// allocation — one gene per task, the i-th gene in every chromosome
// referring to the i-th task by arrival order. Crossover swaps a
// contiguous gene segment (machines and orders) between two chromosomes;
// mutation reassigns one gene's machine to a random eligible machine and
// swaps the global scheduling orders of two genes. Survivor selection is
// elitist: parents and offspring are merged into a 2N meta-population,
// nondominated-sorted, and refilled front by front with crowding-distance
// truncation of the last admitted front.
//
// Because segment swap can duplicate global scheduling orders, offspring
// orders are repaired back into permutations by re-ranking (stable sort
// by swapped value, ties by gene index), which preserves the relative
// order the crossover expressed; see DESIGN.md §4.
//
// The generation loop is engineered to be allocation-free in steady
// state: chromosomes and objective vectors of non-surviving individuals
// are recycled through a per-engine arena, ranking runs over reusable
// scratch (O(n log n) for the paper's bi-objective space via
// moea.Ranker), and the variation phase fans out across workers with one
// deterministic child rng stream per offspring pair, so results are
// bit-identical regardless of worker count. See DESIGN.md §8.
package nsga2

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tradeoff/internal/moea"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// Ranking selects the survivor-ranking rule.
type Ranking int

const (
	// DebFronts uses Deb's fast nondominated sort (the NSGA-II default).
	DebFronts Ranking = iota
	// DominanceCount ranks each solution 1 + the number of solutions
	// dominating it, as the paper's §IV-D describes the rank.
	DominanceCount
)

func (r Ranking) String() string {
	switch r {
	case DebFronts:
		return "deb-fronts"
	case DominanceCount:
		return "dominance-count"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// Individual is one chromosome with its cached evaluation.
type Individual struct {
	Alloc *sched.Allocation
	// Objectives is {total utility earned, total energy consumed in J}.
	Objectives []float64
	// Rank is 1-based; rank 1 is the current Pareto-optimal set.
	Rank int
	// Crowding is the crowding distance within the individual's front.
	Crowding float64

	// contrib caches the per-machine contribution rows of the last
	// machine-major evaluation, letting offspring derived from this
	// individual inherit clean machines' contributions. Engine-internal;
	// Clone deliberately drops it.
	contrib *sched.Contribs
}

// Clone deep-copies the individual.
func (ind Individual) Clone() Individual {
	return Individual{
		Alloc:      ind.Alloc.Clone(),
		Objectives: append([]float64(nil), ind.Objectives...),
		Rank:       ind.Rank,
		Crowding:   ind.Crowding,
	}
}

// Config parameterizes the engine.
//
//detlint:optwire
type Config struct {
	// PopulationSize is N; it must be even and >= 2. Default 100.
	PopulationSize int
	// MutationRate is the per-offspring mutation probability (selected by
	// experimentation in the paper). Default 0.1.
	MutationRate float64
	// Ranking selects the survivor-ranking rule. Default DebFronts.
	Ranking Ranking
	// Seeds are allocations injected into the initial population; the
	// remainder is random. Seeds beyond PopulationSize are ignored.
	Seeds []*sched.Allocation
	// Workers bounds parallelism of fitness evaluation and of the
	// variation phase; 0 means GOMAXPROCS, 1 forces serial execution.
	// Results are identical for every worker count.
	Workers int
	// Repair selects how offspring order arrays are restored into
	// permutations after crossover. Default RerankRepair.
	Repair Repair
	// Selection selects how crossover parents are drawn. Default
	// UniformSelection (as the paper describes); TournamentSelection is
	// the canonical NSGA-II binary tournament on (rank, crowding).
	Selection Selection
	// Problem optionally replaces the paper's utility/energy objective
	// pair. Nil means UtilityEnergyProblem. Custom problems let the same
	// engine solve e.g. the makespan/energy formulation of the authors'
	// prior work (Friese et al., INFOCOMP 2012).
	//detlint:allow optwire code-level extension point: custom problems are built by callers, not CLI flags
	Problem *Problem
	// Evaluation selects the offspring-evaluation strategy. The default
	// DeltaEvaluation re-simulates only machines whose task sequence the
	// variation operators touched; FullEvaluation re-simulates every
	// machine. Both run the machine-major kernel and produce
	// bit-identical populations for the same seed and any worker count.
	Evaluation Evaluation
	// DeltaMaxDirtyFrac is retained for configuration compatibility and
	// no longer consulted: since the type-compressed kernel rework,
	// parent inheritance is decided per machine by bucket-fingerprint
	// match rather than by variation-reported dirty flags, so there is no
	// diff phase left to bail out of. Values in [0,1] validate as before.
	//detlint:allow optwire compatibility knob retained for old callers; deliberately no CLI plumbing
	DeltaMaxDirtyFrac float64
	// CacheCapacity bounds the fitness-memoization cache in entries
	// (rounded up to a power of two). 0 means the default, 4 ×
	// PopulationSize; negative disables memoization entirely.
	// Populations are bit-identical for every capacity, including
	// disabled — the cache only changes how fast evaluations happen.
	CacheCapacity int
	// CacheVerify re-evaluates every cache hit and panics if the
	// memoized outcome is not bit-identical — a debug guard against
	// 64-bit fingerprint collisions. Expensive: each hit then costs a
	// full simulation plus comparison.
	CacheVerify bool
	// MachineCacheCapacity bounds the machine-bucket memoization cache
	// in entries (rounded up to a power of two). This second level sits
	// beneath the whole-chromosome cache: it keys on one machine's
	// bucket fingerprint and caches that machine's contribution row, so
	// an offspring that reproduces a previously seen machine schedule
	// skips that machine's simulation even when the chromosome as a
	// whole is new. 0 means the default, 128 × PopulationSize; negative
	// disables the level. Populations are bit-identical for every
	// capacity, including disabled.
	MachineCacheCapacity int
	// MachineCacheVerify re-simulates every machine-cache hit and panics
	// if the memoized row is not bit-identical — the bucket-fingerprint
	// analogue of CacheVerify, and as expensive.
	MachineCacheVerify bool
	// Kernel selects the per-machine simulation loop: the
	// type-compressed run-length kernel (the default) or the per-task
	// scalar reference. Both are bit-identical; the choice only affects
	// speed.
	Kernel sched.Kernel
}

// Evaluation selects how offspring objective values are computed.
type Evaluation int

const (
	// DeltaEvaluation (the default) evaluates offspring incrementally:
	// variation reports the machines it may have dirtied, machines whose
	// task sequence is unchanged from the parent inherit the parent's
	// cached per-machine contributions, and only truly changed machines
	// are re-simulated. Seeded, injected, restored, and shuffle-repaired
	// chromosomes automatically fall back to a full simulation.
	DeltaEvaluation Evaluation = iota
	// FullEvaluation re-simulates every machine of every offspring.
	FullEvaluation
)

func (ev Evaluation) String() string {
	switch ev {
	case DeltaEvaluation:
		return "delta"
	case FullEvaluation:
		return "full"
	default:
		return fmt.Sprintf("Evaluation(%d)", int(ev))
	}
}

// Problem defines the objective space the engine optimizes over.
type Problem struct {
	// Name identifies the problem in diagnostics.
	Name string
	// Space declares the per-objective optimization senses.
	Space moea.Space
	// Objectives maps a schedule evaluation to an objective vector
	// matching Space.
	Objectives func(sched.Evaluation) []float64
	// FillObjectives, when non-nil, writes the objective vector into dst
	// (len Space.Dim()), letting the engine recycle objective buffers
	// instead of allocating each evaluation. Optional; Objectives remains
	// the fallback and the two must agree.
	FillObjectives func(dst []float64, ev sched.Evaluation)
}

// fill writes the objectives of ev into ind, reusing ind.Objectives when
// possible.
func (p *Problem) fill(ind *Individual, ev sched.Evaluation, dim int) {
	if p.FillObjectives == nil {
		ind.Objectives = p.Objectives(ev)
		return
	}
	if cap(ind.Objectives) < dim {
		ind.Objectives = make([]float64, dim)
	}
	ind.Objectives = ind.Objectives[:dim]
	p.FillObjectives(ind.Objectives, ev)
}

// UtilityEnergyProblem is the paper's bi-objective problem: maximize
// total utility earned, minimize total energy consumed.
func UtilityEnergyProblem() *Problem {
	return &Problem{
		Name:  "utility-energy",
		Space: moea.UtilityEnergySpace(),
		Objectives: func(ev sched.Evaluation) []float64 {
			return []float64{ev.Utility, ev.Energy}
		},
		FillObjectives: func(dst []float64, ev sched.Evaluation) {
			dst[0], dst[1] = ev.Utility, ev.Energy
		},
	}
}

// MakespanEnergyProblem is the prior-work formulation the paper contrasts
// itself against in §II (ref [3]): minimize makespan, minimize energy.
func MakespanEnergyProblem() *Problem {
	return &Problem{
		Name:  "makespan-energy",
		Space: moea.NewSpace(moea.Minimize, moea.Minimize),
		Objectives: func(ev sched.Evaluation) []float64 {
			return []float64{ev.Makespan, ev.Energy}
		},
		FillObjectives: func(dst []float64, ev sched.Evaluation) {
			dst[0], dst[1] = ev.Makespan, ev.Energy
		},
	}
}

// Selection selects the parent-selection rule.
type Selection int

const (
	// UniformSelection draws both crossover parents uniformly at random
	// from the population (the paper's §IV-D operator).
	UniformSelection Selection = iota
	// TournamentSelection draws each parent as the winner of a binary
	// tournament under the crowded-comparison operator: lower rank wins;
	// equal ranks are broken by larger crowding distance (Deb 2002).
	TournamentSelection
)

func (s Selection) String() string {
	switch s {
	case UniformSelection:
		return "uniform"
	case TournamentSelection:
		return "tournament"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Repair selects the post-crossover permutation repair strategy.
type Repair int

const (
	// RerankRepair stably re-ranks the swapped order values into a
	// permutation, preserving the relative ordering crossover expressed
	// (the default; see DESIGN.md §4).
	RerankRepair Repair = iota
	// ShuffleRepair discards the order information and draws a fresh
	// random permutation. Ablation baseline: it shows how much of the
	// search signal lives in the inherited scheduling order.
	ShuffleRepair
)

func (r Repair) String() string {
	switch r {
	case RerankRepair:
		return "rerank"
	case ShuffleRepair:
		return "shuffle"
	default:
		return fmt.Sprintf("Repair(%d)", int(r))
	}
}

func (c *Config) fillDefaults() {
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DeltaMaxDirtyFrac == 0 {
		c.DeltaMaxDirtyFrac = 0.95
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4 * c.PopulationSize
	}
	if c.MachineCacheCapacity == 0 {
		c.MachineCacheCapacity = 128 * c.PopulationSize
	}
}

func (c *Config) validate() error {
	if c.PopulationSize < 2 || c.PopulationSize%2 != 0 {
		return fmt.Errorf("nsga2: population size %d, want even and >= 2", c.PopulationSize)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("nsga2: mutation rate %v outside [0,1]", c.MutationRate)
	}
	if c.Workers < 0 {
		return fmt.Errorf("nsga2: workers %d, want >= 0", c.Workers)
	}
	switch c.Ranking {
	case DebFronts, DominanceCount:
	default:
		return fmt.Errorf("nsga2: unknown ranking %d", int(c.Ranking))
	}
	switch c.Repair {
	case RerankRepair, ShuffleRepair:
	default:
		return fmt.Errorf("nsga2: unknown repair strategy %d", int(c.Repair))
	}
	switch c.Selection {
	case UniformSelection, TournamentSelection:
	default:
		return fmt.Errorf("nsga2: unknown selection %d", int(c.Selection))
	}
	switch c.Evaluation {
	case DeltaEvaluation, FullEvaluation:
	default:
		return fmt.Errorf("nsga2: unknown evaluation strategy %d", int(c.Evaluation))
	}
	if c.DeltaMaxDirtyFrac < 0 || c.DeltaMaxDirtyFrac > 1 {
		return fmt.Errorf("nsga2: delta dirty fraction %v outside [0,1]", c.DeltaMaxDirtyFrac)
	}
	switch c.Kernel {
	case sched.KernelTyped, sched.KernelScalar:
	default:
		return fmt.Errorf("nsga2: unknown evaluation kernel %d", int(c.Kernel))
	}
	return nil
}

// arena recycles the buffers of non-surviving individuals so the
// generation loop allocates nothing in steady state: exactly N
// chromosomes and objective vectors leave the population each
// generation, and exactly N are needed for the next offspring batch.
//
// Buffers are carved from contiguous structure-of-arrays blocks — one
// backing slice per field (machine genes, order genes, objectives,
// contribution rows) — so a population walk streams through memory
// instead of chasing per-individual allocations. Slot strides are
// padded to whole cache lines: two slots handed to offspring owned by
// different workers never share a line, so the parallel variation and
// evaluation fan-outs write into disjoint cache-line-padded regions.
// Each field grows independently in blocks of `batch` slots (the
// fitness cache draws contribution buffers without touching the
// chromosome lists).
// arenaChunkBytes bounds the genotype growth quantum: one chunk's
// machine+order blocks together stay near this size, so a 10⁶-task
// engine grows its arena a few slots at a time instead of re-carving
// 2×population slots (which at that scale would be gigabytes per
// growth step and would double peak memory across a snapshot restore).
const arenaChunkBytes = 8 << 20

// arena recycles the population's SoA storage as a list of fixed-size
// chunks per field (DESIGN.md §13). Slot s of chunk c addresses the
// half-open gene range [s·stride, s·stride+numTasks) of chunk c's
// contiguous machine/order blocks; chunks are append-only, so growth
// never copies or moves existing field data — only the free stacks'
// slot headers are extended, one chunk at a time.
type arena struct {
	eval *sched.Evaluator
	dim  int
	// batch is the steady-state demand hint (2×population): the upper
	// bound on slots per chunk, and the exact chunk size for the small
	// per-slot fields (objectives, contribs) where one chunk is cheap.
	batch int

	allocs   []*sched.Allocation
	objs     [][]float64
	contribs []*sched.Contribs

	// Carved-slot totals per field; in-use = carved − free-list length.
	allocSlots, objSlots, contribSlots int
	// Chunk counts per field, for growth-quantum tests and diagnostics.
	allocChunks, objChunks, contribChunks int
}

func (ar *arena) init(eval *sched.Evaluator, dim, batch int) {
	ar.eval = eval
	ar.dim = dim
	if batch < 1 {
		batch = 1
	}
	ar.batch = batch
}

// allocChunkSlots returns the genotype-chunk size for a given gene
// stride: as many slots as fit arenaChunkBytes (machine+order int32
// blocks), clamped to [4, batch].
func (ar *arena) allocChunkSlots(stride int) int {
	n := arenaChunkBytes / (stride * 8) // 2 fields × 4 bytes per gene
	if n < 4 {
		n = 4
	}
	if n > ar.batch {
		n = ar.batch
	}
	return n
}

// growAllocs carves one genotype chunk: two contiguous per-field blocks
// (machine, order) with 16-gene-aligned strides so slots never share a
// cache line, pushed onto the free stack as (chunk, offset) slot views.
func (ar *arena) growAllocs() {
	nt := ar.eval.NumTasks()
	stride := (nt + 15) / 16 * 16 // 16 int32 genes per 64-byte line
	n := ar.allocChunkSlots(stride)
	machine := make([]int32, n*stride)
	order := make([]int32, n*stride)
	for s := 0; s < n; s++ {
		ar.allocs = append(ar.allocs, &sched.Allocation{
			Machine: machine[s*stride : s*stride : s*stride+nt],
			Order:   order[s*stride : s*stride : s*stride+nt],
		})
	}
	ar.allocSlots += n
	ar.allocChunks++
}

func (ar *arena) getAlloc() *sched.Allocation {
	if len(ar.allocs) == 0 {
		ar.growAllocs()
	}
	k := len(ar.allocs) - 1
	a := ar.allocs[k]
	ar.allocs = ar.allocs[:k]
	return a
}

func (ar *arena) putAlloc(a *sched.Allocation) {
	if a != nil {
		ar.allocs = append(ar.allocs, a)
	}
}

func (ar *arena) getObjs() []float64 {
	if len(ar.objs) == 0 {
		stride := (ar.dim + 7) / 8 * 8 // whole 64-byte lines per slot
		back := make([]float64, ar.batch*stride)
		for s := 0; s < ar.batch; s++ {
			ar.objs = append(ar.objs, back[s*stride:s*stride:s*stride+ar.dim])
		}
		ar.objSlots += ar.batch
		ar.objChunks++
	}
	k := len(ar.objs) - 1
	o := ar.objs[k]
	ar.objs = ar.objs[:k]
	return o
}

func (ar *arena) putObjs(o []float64) {
	if o != nil {
		ar.objs = append(ar.objs, o)
	}
}

func (ar *arena) getContrib() *sched.Contribs {
	if len(ar.contribs) == 0 {
		ar.contribs = append(ar.contribs, ar.eval.NewContribsBatch(ar.batch)...)
		ar.contribSlots += ar.batch
		ar.contribChunks++
	}
	k := len(ar.contribs) - 1
	c := ar.contribs[k]
	ar.contribs = ar.contribs[:k]
	c.Invalidate() // stale rows; the next evaluation overwrites them
	return c
}

func (ar *arena) putContrib(c *sched.Contribs) {
	if c != nil {
		ar.contribs = append(ar.contribs, c)
	}
}

// occupancy returns the in-use fraction of all carved slots across the
// three fields (0 when nothing has been carved yet).
func (ar *arena) occupancy() (inUse, total int) {
	total = ar.allocSlots + ar.objSlots + ar.contribSlots
	free := len(ar.allocs) + len(ar.objs) + len(ar.contribs)
	return total - free, total
}

// Engine runs NSGA-II over a fixed evaluator. It is not safe for
// concurrent use; fitness-evaluation and variation parallelism is
// internal and deterministic.
type Engine struct {
	cfg     Config
	eval    *sched.Evaluator
	problem *Problem
	space   moea.Space
	src     *rng.Source

	pop        []Individual
	generation int

	sessions []*sched.DeltaSession // one per worker

	// Steady-state scratch (lazily sized on first Step).
	ranker      *moea.Ranker
	arena       arena
	parents     []*Individual // 2 per offspring pair, drawn serially
	offspring   []Individual
	meta        []Individual
	popBuf      []Individual // survivor build buffer, swapped with pop
	points      [][]float64
	picked      []bool
	groupOrder  []int
	crowdOrd    crowdOrderSorter
	workerSrc   []rng.Source // reseeded per offspring pair
	varScratch  [][]int32    // per-worker repair scratch (first child's histogram)
	varScratch2 [][]int32    // second child's histogram, alive at the same time

	// Per-offspring evaluation scratch. slots[i] is offspring i's
	// execution-order slot array (sched.PackSlot per scheduling
	// position) and mcounts[i] its per-machine task histogram, both
	// written by the variation fan-out as by-products of order repair
	// (mutation patches them in O(1)); plans[i] carries Prepare's
	// residue (fingerprint misses to simulate) between the evaluation
	// phases; needSlot[i][k] is the machine-bucket cache's verdict for
	// plan Need entry k (slot index, or -1 for a miss). All rows are
	// padded to whole cache lines inside one backing slice so concurrent
	// workers never share a line.
	slots    [][]uint64
	mcounts  [][]int32
	plans    []*sched.DeltaPlan
	needSlot [][]int32
	// missKs[w] is worker w's scratch for the Need indices the
	// machine-bucket cache missed, handed to SimulateNeedList so the
	// batched kernel sees the misses as one group.
	missKs [][]int32

	// Dirty-machine telemetry: one row of machine flags per offspring,
	// written by the variation fan-out only while an observer is
	// attached (evaluation no longer consumes the flags — fingerprint
	// matching decides inheritance by content).
	dirty  [][]bool
	dirtyN []int

	// Fitness memoization (cache.go): nil when disabled. fprint and
	// cacheEv are per-offspring slots written inside the fan-outs;
	// cacheSlot is the serial probe phase's verdict per offspring (slot
	// index, or -1 for a miss). verifyContribs is per-worker scratch for
	// the verify-on-hit debug mode.
	cache          *fitCache
	fprint         []uint64
	cacheSlot      []int32
	cacheEv        []sched.Evaluation
	cacheBase      cacheStats
	verifyContribs []*sched.Contribs

	// Machine-bucket memoization (mcache.go): the second cache level,
	// keyed on per-machine bucket fingerprints. nil when disabled.
	mcache     *machineCache
	mcacheBase cacheStats

	// Observer state (see observe.go). observer is nil when telemetry is
	// disabled — the only cost then is one nil check per Step.
	observer  obs.Observer
	kernel    *obs.IndicatorKernel
	statsBase sched.DeltaStats
	frontObs  [][]float64 // recycled borrow-only front buffer
	frontOrd  frontSorter

	// Phase profiler (see observe.go). phase is nil when profiling is
	// disabled — every Step bracket is then a nil-receiver no-op.
	// phaseBase is the cumulative-totals snapshot notifyGeneration diffs
	// against to attribute phase time per generation.
	phase     *obs.PhaseTimer
	phaseBase obs.PhaseTotals
}

// New creates an engine with an initial population: the seeds (validated)
// followed by random chromosomes, all evaluated and ranked.
func New(eval *sched.Evaluator, cfg Config, src *rng.Source) (*Engine, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("nsga2: nil random source")
	}
	problem := cfg.Problem
	if problem == nil {
		problem = UtilityEnergyProblem()
	}
	if problem.Objectives == nil || problem.Space.Dim() < 2 {
		return nil, fmt.Errorf("nsga2: problem %q needs an objective function and >= 2 senses", problem.Name)
	}
	e := &Engine{
		cfg:     cfg,
		eval:    eval,
		problem: problem,
		space:   problem.Space,
		src:     src,
		ranker:  moea.NewRanker(),
	}
	e.sessions = make([]*sched.DeltaSession, cfg.Workers)
	for i := range e.sessions {
		e.sessions[i] = eval.NewDeltaSession()
		e.sessions[i].SetKernel(cfg.Kernel)
	}
	e.arena.init(eval, e.space.Dim(), 2*cfg.PopulationSize)
	if cfg.CacheCapacity > 0 {
		e.cache = newFitCache(cfg.CacheCapacity, &e.arena)
	}
	if cfg.MachineCacheCapacity > 0 {
		e.mcache = newMachineCache(cfg.MachineCacheCapacity)
	}

	e.pop = make([]Individual, 0, cfg.PopulationSize)
	for _, s := range cfg.Seeds {
		if len(e.pop) == cfg.PopulationSize {
			break
		}
		if err := eval.Validate(s); err != nil {
			return nil, fmt.Errorf("nsga2: invalid seed: %w", err)
		}
		a := e.arena.getAlloc()
		a.CopyFrom(s)
		e.pop = append(e.pop, Individual{Alloc: a})
	}
	for len(e.pop) < cfg.PopulationSize {
		a := e.arena.getAlloc()
		eval.RandomAllocationInto(a, src)
		e.pop = append(e.pop, Individual{Alloc: a})
	}
	e.evaluateAll(e.pop)
	e.rank(e.pop)
	return e, nil
}

// ensureScratch sizes the per-engine buffers the generation loop reuses.
func (e *Engine) ensureScratch() {
	n := e.cfg.PopulationSize
	if cap(e.parents) >= n {
		return
	}
	nt := e.eval.NumTasks()
	nm := e.eval.NumMachines()
	e.parents = make([]*Individual, n)
	e.offspring = make([]Individual, 0, n)
	e.meta = make([]Individual, 0, 2*n)
	e.popBuf = make([]Individual, 0, n)
	e.points = make([][]float64, 0, 2*n)
	e.picked = make([]bool, 2*n)
	e.groupOrder = make([]int, 0, 2*n)
	e.dirty = make([][]bool, n)
	stride := (nm + 63) / 64 * 64 // whole cache lines per row
	dirtyBack := make([]bool, n*stride)
	for i := range e.dirty {
		e.dirty[i] = dirtyBack[i*stride : i*stride+nm : i*stride+nm]
	}
	e.dirtyN = make([]int, n)
	slotStride := (nt + 7) / 8 * 8 // 8 uint64 per 64-byte line
	slotBack := make([]uint64, n*slotStride)
	e.slots = make([][]uint64, n)
	for i := range e.slots {
		e.slots[i] = slotBack[i*slotStride : i*slotStride+nt : i*slotStride+nt]
	}
	e.plans = make([]*sched.DeltaPlan, n)
	for i := range e.plans {
		e.plans[i] = e.eval.NewDeltaPlan()
	}
	cntStride := (nm + 15) / 16 * 16 // 16 int32 per 64-byte line
	cntBack := make([]int32, n*cntStride)
	e.mcounts = make([][]int32, n)
	for i := range e.mcounts {
		e.mcounts[i] = cntBack[i*cntStride : i*cntStride+nm : i*cntStride+nm]
	}
	if e.mcache != nil {
		nsStride := (nm + 15) / 16 * 16 // 16 int32 per 64-byte line
		nsBack := make([]int32, n*nsStride)
		e.needSlot = make([][]int32, n)
		for i := range e.needSlot {
			e.needSlot[i] = nsBack[i*nsStride : i*nsStride+nm : i*nsStride+nm]
		}
	}
	if e.cache != nil {
		e.fprint = make([]uint64, n)
		e.cacheSlot = make([]int32, n)
		e.cacheEv = make([]sched.Evaluation, n)
	}
	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	e.workerSrc = make([]rng.Source, workers)
	e.varScratch = make([][]int32, workers)
	e.varScratch2 = make([][]int32, workers)
	e.missKs = make([][]int32, workers)
	for w := range e.missKs {
		e.missKs[w] = make([]int32, 0, nm)
	}
	for w := range e.varScratch {
		e.varScratch[w] = make([]int32, nt)
		e.varScratch2[w] = make([]int32, nt)
	}
	if e.cfg.CacheVerify && e.verifyContribs == nil {
		e.verifyContribs = e.eval.NewContribsBatch(workers)
	}
}

// Generation returns the number of completed generations.
func (e *Engine) Generation() int { return e.generation }

// Population returns a deep copy of the current population.
func (e *Engine) Population() []Individual {
	out := make([]Individual, len(e.pop))
	for i, ind := range e.pop {
		out[i] = ind.Clone()
	}
	return out
}

// ParetoFront returns deep copies of the rank-1 individuals, sorted by
// descending utility.
func (e *Engine) ParetoFront() []Individual {
	count := 0
	for i := range e.pop {
		if e.pop[i].Rank == 1 {
			count++
		}
	}
	out := make([]Individual, 0, count)
	for _, ind := range e.pop {
		if ind.Rank == 1 {
			out = append(out, ind.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Objectives[0], out[j].Objectives[0]
		if e.space.Senses[0] == moea.Maximize {
			return a > b
		}
		return a < b
	})
	return out
}

// FrontPoints returns the rank-1 objective vectors (utility, energy),
// sorted by descending utility.
func (e *Engine) FrontPoints() [][]float64 {
	front := e.ParetoFront()
	out := make([][]float64, len(front))
	for i, ind := range front {
		out[i] = ind.Objectives
	}
	return out
}

// Elites returns deep copies of the n best individuals under the
// crowded-comparison order (rank ascending, crowding descending).
func (e *Engine) Elites(n int) []Individual {
	if n > len(e.pop) {
		n = len(e.pop)
	}
	idx := make([]int, len(e.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := &e.pop[idx[a]], &e.pop[idx[b]]
		if ia.Rank != ib.Rank {
			return ia.Rank < ib.Rank
		}
		return ia.Crowding > ib.Crowding
	})
	out := make([]Individual, n)
	for i := 0; i < n; i++ {
		out[i] = e.pop[idx[i]].Clone()
	}
	return out
}

// Inject replaces the engine's worst individuals (rank descending,
// crowding ascending) with copies of the given individuals, re-ranking
// the population. Injected individuals must be valid for the engine's
// evaluator; unevaluated ones are evaluated under the engine's problem.
func (e *Engine) Inject(inds []Individual) error {
	if len(inds) == 0 {
		return nil
	}
	if len(inds) > len(e.pop) {
		inds = inds[:len(e.pop)]
	}
	for i, ind := range inds {
		if err := e.eval.Validate(ind.Alloc); err != nil {
			return fmt.Errorf("nsga2: injected individual %d invalid: %w", i, err)
		}
	}
	clones := make([]Individual, len(inds))
	for i, ind := range inds {
		// Copy into arena slots and leave Objectives nil: evaluateAll
		// re-evaluates (or cache-hits) under this engine's problem.
		a := e.arena.getAlloc()
		a.CopyFrom(ind.Alloc)
		clones[i] = Individual{Alloc: a}
	}
	e.evaluateAll(clones)
	idx := make([]int, len(e.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := &e.pop[idx[a]], &e.pop[idx[b]]
		if ia.Rank != ib.Rank {
			return ia.Rank > ib.Rank
		}
		return ia.Crowding < ib.Crowding
	})
	for i, c := range clones {
		e.arena.putAlloc(e.pop[idx[i]].Alloc)
		e.arena.putObjs(e.pop[idx[i]].Objectives)
		e.arena.putContrib(e.pop[idx[i]].contrib)
		e.pop[idx[i]] = c
	}
	e.rank(e.pop)
	return nil
}

// Step advances the engine by one generation (Algorithm 1 steps 3–11).
// Steady-state Steps allocate nothing: offspring chromosomes come from
// the arena, variation and evaluation run over per-worker scratch, and
// ranking reuses the engine's moea.Ranker.
//
//detlint:hotpath
//detlint:pure
func (e *Engine) Step() {
	n := e.cfg.PopulationSize
	pairs := n / 2
	e.ensureScratch()

	// Steps 3–4: draw parents serially (selection consumes the engine
	// source in a worker-independent order), then derive one child rng
	// stream per offspring pair from two generation-level draws. The
	// variation fan-out below is bit-identical for every worker count.
	// Phase brackets throughout are nil-receiver no-ops unless a
	// PhaseTimer is attached, and never touch engine rng or state.
	t0 := e.phase.Start()
	for k := 0; k < 2*pairs; k++ {
		e.parents[k] = e.selectParent()
	}
	genSeed := e.src.Uint64()
	genStream := e.src.Uint64()
	e.phase.Record(obs.PhaseSelect, t0)

	t0 = e.phase.Start()
	e.offspring = e.offspring[:0]
	for i := 0; i < n; i++ {
		e.offspring = append(e.offspring, Individual{
			Alloc:      e.arena.getAlloc(),
			Objectives: e.arena.getObjs(),
			contrib:    e.arena.getContrib(),
		})
	}
	// Steps 4–5: crossover + repair + mutation, parallel across pairs.
	e.varyAll(genSeed, genStream, pairs)
	e.phase.Record(obs.PhaseVariation, t0)
	// Memoization bracket: probe the fitness cache serially (its state
	// must evolve identically for every worker count), let the parallel
	// evaluation fan-out copy hits and simulate misses, then insert the
	// missed outcomes serially in offspring order.
	if e.cache != nil {
		t0 = e.phase.Start()
		e.probeCache(n)
		e.phase.Record(obs.PhaseCacheProbe, t0)
	}
	t0 = e.phase.Start()
	e.evaluateInPlace(e.offspring)
	e.phase.Record(obs.PhaseEval, t0)
	if e.cache != nil {
		t0 = e.phase.Start()
		e.insertCache(n)
		e.phase.Record(obs.PhaseCacheInsert, t0)
	}

	// Step 6: merge into the 2N meta-population (elitism).
	t0 = e.phase.Start()
	e.meta = e.meta[:0]
	e.meta = append(e.meta, e.pop...)
	e.meta = append(e.meta, e.offspring...)

	// Steps 7–10: rank, fill by rank groups, truncate by crowding.
	e.selectSurvivors(n)
	e.phase.Record(obs.PhaseSort, t0)
	e.generation++

	// Telemetry last: the observer sees the post-step state and, by
	// construction, cannot influence it (no rng access, borrow-only
	// buffers). Disabled observation is this one nil check.
	if e.observer != nil {
		e.notifyGeneration()
	}
}

// Run advances the engine by the given number of generations.
func (e *Engine) Run(generations int) {
	for i := 0; i < generations; i++ {
		e.Step()
	}
}

// RunCheckpoints advances the engine through increasing generation
// checkpoints, invoking fn with the cumulative generation count after
// each.
//
// Checkpoint contract: checkpoints are absolute generation counts, must
// be nonnegative and nondecreasing, and fn is invoked exactly once per
// checkpoint entry — a checkpoint at or below the engine's current
// generation reports the current front without stepping. In particular,
// checkpoint 0 on a fresh engine reports the evaluated and ranked
// INITIAL population's front (generation 0): the baseline every
// convergence plot starts from. Duplicate checkpoints re-report the
// same generation.
func (e *Engine) RunCheckpoints(checkpoints []int, fn func(generation int, front []Individual)) error {
	prev := 0
	for _, cp := range checkpoints {
		if cp < 0 {
			return fmt.Errorf("nsga2: checkpoint %d is negative", cp)
		}
		if cp < prev {
			return fmt.Errorf("nsga2: checkpoints must be nondecreasing, got %d after %d", cp, prev)
		}
		prev = cp
		for e.generation < cp {
			e.Step()
		}
		fn(e.generation, e.ParetoFront())
	}
	return nil
}

// selectParent draws one crossover parent according to the configured
// selection rule. The returned pointer is stable until survivor
// selection replaces the population.
func (e *Engine) selectParent() *Individual {
	n := len(e.pop)
	if e.cfg.Selection == TournamentSelection {
		a, b := e.src.Intn(n), e.src.Intn(n)
		ia, ib := &e.pop[a], &e.pop[b]
		switch {
		case ia.Rank < ib.Rank:
			return ia
		case ib.Rank < ia.Rank:
			return ib
		case ia.Crowding >= ib.Crowding:
			return ia
		default:
			return ib
		}
	}
	return &e.pop[e.src.Intn(n)]
}

// varyAll runs crossover, repair, and mutation for all offspring pairs,
// fanning out across the configured workers. Pair k always draws from
// the stream (genSeed, genStream+k), so the offspring are independent of
// how pairs are partitioned across workers.
func (e *Engine) varyAll(genSeed, genStream uint64, pairs int) {
	workers := e.cfg.Workers
	if workers > pairs {
		workers = pairs
	}
	if workers <= 1 {
		src := &e.workerSrc[0]
		for k := 0; k < pairs; k++ {
			src.Reseed(genSeed, genStream+uint64(k))
			e.varyPair(k, src, e.varScratch[0], e.varScratch2[0])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (pairs + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= pairs {
			break
		}
		hi := lo + chunk
		if hi > pairs {
			hi = pairs
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			src := &e.workerSrc[w]
			for k := lo; k < hi; k++ {
				src.Reseed(genSeed, genStream+uint64(k))
				// varyPair writes only pair k's offspring/arena slots and
				// worker w's scratch; disjoint per goroutine, and proven
				// worker-invariant by TestWorkerCountInvariance.
				//detlint:allow sharedstate per-pair slots are disjoint across workers
				e.varyPair(k, src, e.varScratch[w], e.varScratch2[w])
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// varyPair produces offspring 2k and 2k+1 from parents 2k and 2k+1 in
// recycled buffers: crossover, order repair, then per-child mutation
// coin flips, all drawn from the pair's own stream. Alongside the
// chromosomes it maintains each child's execution-order slot array (a
// by-product of order repair, patched in O(1) by mutation) and, while
// an observer is attached, the dirty-machine telemetry: which machines
// each child's variation may have touched relative to its parent.
//
//detlint:hotpath
func (e *Engine) varyPair(k int, src *rng.Source, scratch, scratch2 []int32) {
	c1 := e.offspring[2*k].Alloc
	c2 := e.offspring[2*k+1].Alloc
	s1, s2 := e.slots[2*k], e.slots[2*k+1]
	n1, n2 := e.mcounts[2*k], e.mcounts[2*k+1]
	c1.CopyFrom(e.parents[2*k].Alloc)
	c2.CopyFrom(e.parents[2*k+1].Alloc)
	var d1, d2 []bool
	if e.observer != nil {
		d1, d2 = e.dirty[2*k], e.dirty[2*k+1]
		for m := range d1 {
			d1[m] = false
			d2[m] = false
		}
	}
	i, j := e.crossInto(c1, c2, s1, s2, n1, n2, src, scratch, scratch2)
	if d1 != nil && e.cfg.Repair != ShuffleRepair {
		// The candidate-dirty machines of BOTH children are the machines
		// appearing in either child's post-swap segment: a machine either
		// gains the segment tasks it now hosts or loses the ones the swap
		// moved to the sibling. A machine with no segment genes keeps its
		// task set, and rerank repair preserves the relative order of
		// genes outside the segment, so its sequence is unchanged.
		for g := i; g <= j; g++ {
			if m := c1.Machine[g]; m >= 0 {
				d1[m], d2[m] = true, true
			}
			if m := c2.Machine[g]; m >= 0 {
				d1[m], d2[m] = true, true
			}
		}
	}
	if src.Bool(e.cfg.MutationRate) {
		e.mutateWith(c1, s1, n1, src, d1)
	}
	if src.Bool(e.cfg.MutationRate) {
		e.mutateWith(c2, s2, n2, src, d2)
	}
	if d1 != nil {
		n1, n2 := 0, 0
		for m := range d1 {
			if d1[m] {
				n1++
			}
			if d2[m] {
				n2++
			}
		}
		e.dirtyN[2*k], e.dirtyN[2*k+1] = n1, n2
	}
	if e.cache != nil {
		e.fprint[2*k] = fingerprint(c1)
		e.fprint[2*k+1] = fingerprint(c2)
	}
}

// crossInto applies segment swap and order repair to two chromosomes in
// place, returning the inclusive swapped gene range. s1 and s2 receive
// the children's execution-order slot arrays and n1 and n2 their
// per-machine task histograms: the rerank path writes both during the
// repair's placement pass for free, the shuffle path scatters them
// after drawing fresh permutations.
//
// The rerank path never recounts order values from scratch: each child
// starts as a copy of one parent — a valid permutation, so every value's
// count is one — and the segment swap adjusts exactly the counts of the
// values it moves. The repair then consumes the maintained histogram
// directly (repairOrderSlotsCounted), skipping the counting pass over
// the whole chromosome.
//
//detlint:hotpath
func (e *Engine) crossInto(c1, c2 *sched.Allocation, s1, s2 []uint64, n1, n2 []int32, src *rng.Source, scratch, scratch2 []int32) (int, int) {
	n := c1.Len()
	i := src.Intn(n)
	j := src.Intn(n)
	if i > j {
		i, j = j, i
	}
	if e.cfg.Repair == ShuffleRepair {
		for k := i; k <= j; k++ {
			c1.Machine[k], c2.Machine[k] = c2.Machine[k], c1.Machine[k]
			c1.Order[k], c2.Order[k] = c2.Order[k], c1.Order[k]
		}
		src.PermInto32(c1.Order)
		src.PermInto32(c2.Order)
		scatterSlots(c1, s1, n1)
		scatterSlots(c2, s2, n2)
		return i, j
	}
	cnt1, cnt2 := scratch[:n], scratch2[:n]
	for k := range cnt1 {
		cnt1[k] = 1
	}
	for k := range cnt2 {
		cnt2[k] = 1
	}
	for k := i; k <= j; k++ {
		o1, o2 := c1.Order[k], c2.Order[k]
		c1.Machine[k], c2.Machine[k] = c2.Machine[k], c1.Machine[k]
		c1.Order[k], c2.Order[k] = o2, o1
		cnt1[o1]--
		cnt1[o2]++
		cnt2[o2]--
		cnt2[o1]++
	}
	repairOrderSlotsCounted(c1.Order, c1.Machine, cnt1, s1, n1)
	repairOrderSlotsCounted(c2.Order, c2.Machine, cnt2, s2, n2)
	return i, j
}

// scatterSlots rebuilds an execution-order slot array and per-machine
// task histogram from scratch — the fallback for repair paths that
// don't produce them as by-products.
//
//detlint:hotpath
func scatterSlots(a *sched.Allocation, slots []uint64, counts []int32) {
	machine, order := a.Machine, a.Order
	for m := range counts {
		counts[m] = 0
	}
	for i := range machine {
		m := machine[i]
		slots[order[i]] = sched.PackSlot(m, i)
		if m >= 0 {
			counts[m]++
		}
	}
}

// repairOrder rewrites ord into a permutation of [0, len): genes are
// ranked by their (possibly duplicated) swapped order values, ties broken
// by gene index, preserving the relative ordering the values express.
// Values must lie in [0, len), which segment swap between two
// permutations guarantees.
func repairOrder(ord []int32) {
	repairOrderScratch(ord, make([]int32, len(ord)))
}

// repairOrderScratch is repairOrder over caller-provided scratch (len >=
// len(ord)): a counting sort over the order values. Positions within one
// value are assigned in ascending gene index, so the ranking is stable
// by construction, and the whole repair is O(n) with no comparison sort
// — on 4000-task chromosomes this is the difference between the repair
// and the simulation dominating a generation.
//
//detlint:hotpath
func repairOrderScratch(ord, scratch []int32) {
	n := len(ord)
	counts := scratch[:n]
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range ord {
		counts[v]++
	}
	var sum int32
	for v, c := range counts {
		counts[v] = sum
		sum += c
	}
	for i, v := range ord {
		ord[i] = counts[v]
		counts[v]++
	}
}

// repairOrderSlots is repairOrderScratch fused with the slot scatter:
// the placement pass already visits every (gene, final rank) pair, so
// writing slots[rank] = PackSlot(machine, gene) there — and bumping the
// machine's task histogram — makes the execution-order layout and the
// per-machine counts the evaluation phases consume free by-products of
// the repair instead of separate passes over the chromosome.
//
//detlint:hotpath
func repairOrderSlots(ord, machine, scratch []int32, slots []uint64, mcounts []int32) {
	n := len(ord)
	counts := scratch[:n]
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range ord {
		counts[v]++
	}
	repairOrderSlotsCounted(ord, machine, counts, slots, mcounts)
}

// repairOrderSlotsCounted is repairOrderSlots with the order-value
// histogram supplied by the caller (crossInto maintains it through the
// segment swap instead of recounting the chromosome). counts is
// consumed: the prefix-sum pass turns it into placement cursors.
//
//detlint:hotpath
func repairOrderSlotsCounted(ord, machine, counts []int32, slots []uint64, mcounts []int32) {
	var sum int32
	for v, c := range counts {
		counts[v] = sum
		sum += c
	}
	for m := range mcounts {
		mcounts[m] = 0
	}
	for i, v := range ord {
		r := counts[v]
		ord[i] = r
		counts[v] = r + 1
		m := machine[i]
		slots[r] = sched.PackSlot(m, i)
		if m >= 0 {
			mcounts[m]++
		}
	}
}

// mutateWith implements the paper's operator: reassign one random gene
// to a random eligible machine, and swap the global scheduling orders of
// two random genes — patching the chromosome's slot array and machine
// histogram in O(1) per edit. When dirty is non-nil it flags the
// machines the edit may have touched: the gene's old and new machine,
// plus the hosts of the two order-swapped genes (an order swap only
// reorders those two tasks within their own machines).
//
//detlint:hotpath
func (e *Engine) mutateWith(a *sched.Allocation, slots []uint64, counts []int32, src *rng.Source, dirty []bool) {
	n := a.Len()
	g := src.Intn(n)
	el := e.eval.Eligible(e.eval.Trace().Tasks[g].Type)
	old := a.Machine[g]
	a.Machine[g] = int32(el[src.Intn(len(el))])
	slots[a.Order[g]] = sched.PackSlot(a.Machine[g], g)
	if old >= 0 {
		counts[old]--
	}
	counts[a.Machine[g]]++
	x, y := src.Intn(n), src.Intn(n)
	ox, oy := a.Order[x], a.Order[y]
	a.Order[x], a.Order[y] = oy, ox
	slots[ox], slots[oy] = slots[oy], slots[ox]
	if dirty == nil {
		return
	}
	if old >= 0 {
		dirty[old] = true
	}
	dirty[a.Machine[g]] = true
	if m := a.Machine[x]; m >= 0 {
		dirty[m] = true
	}
	if m := a.Machine[y]; m >= 0 {
		dirty[m] = true
	}
}

// fanout partitions [0, count) across the configured workers and invokes
// fn once per non-empty chunk with a dedicated worker id.
func (e *Engine) fanout(count int, fn func(worker, lo, hi int)) {
	workers := e.cfg.Workers
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		fn(0, 0, count)
		return
	}
	var wg sync.WaitGroup
	chunk := (count + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= count {
			break
		}
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// probeCache looks every offspring's fingerprint up in the fitness
// cache, recording per-offspring hit slots for the evaluation fan-out
// and refreshing hit stamps. Serial, in offspring order: the cache's
// state transitions must not depend on worker count.
//
//detlint:hotpath
func (e *Engine) probeCache(n int) {
	gen := int64(e.generation)
	for i := 0; i < n; i++ {
		slot := e.cache.lookup(e.fprint[i])
		if slot >= 0 {
			e.cache.stats.hits++
			e.cache.touch(slot, gen)
		} else {
			e.cache.stats.misses++
		}
		e.cacheSlot[i] = int32(slot)
	}
}

// insertCache memoizes the outcomes of this generation's cache misses,
// serially in offspring order (determinism, as probeCache).
//
//detlint:hotpath
func (e *Engine) insertCache(n int) {
	gen := int64(e.generation)
	for i := 0; i < n; i++ {
		if e.cacheSlot[i] >= 0 {
			continue
		}
		e.cache.insert(e.fprint[i], gen, e.cacheEv[i], e.offspring[i].contrib)
	}
}

// verifyHit is the verify-on-hit debug guard: re-simulate the
// allocation and demand the memoized outcome be bit-identical.
func (e *Engine) verifyHit(sess *sched.DeltaSession, scratch *sched.Contribs, a *sched.Allocation, s *fitSlot) {
	if ev := sess.EvaluateFull(a, scratch); ev != s.ev || !scratch.Equal(s.contrib) {
		panic("nsga2: fitness cache verify-on-hit mismatch (64-bit fingerprint collision)")
	}
}

// evaluateAll fully simulates individuals lacking Objectives (seeds,
// injected, restored), fanning out across the configured workers.
// Contribution caches are assigned — and the fitness cache consulted —
// serially first (neither the arena nor the cache is goroutine-safe),
// then the misses are simulated inside the fan-out and memoized
// serially after it. Results are deterministic because each
// individual's evaluation is independent of scheduling.
func (e *Engine) evaluateAll(inds []Individual) {
	todo := make([]int, 0, len(inds))
	var fps []uint64
	if e.cache != nil {
		fps = make([]uint64, 0, len(inds))
	}
	gen := int64(e.generation)
	for i := range inds {
		if inds[i].Objectives != nil {
			continue
		}
		if inds[i].contrib == nil {
			inds[i].contrib = e.arena.getContrib()
		}
		if e.cache != nil {
			fp := fingerprint(inds[i].Alloc)
			if slot := e.cache.lookup(fp); slot >= 0 {
				s := &e.cache.slots[slot]
				e.cache.stats.hits++
				e.cache.touch(slot, gen)
				if e.cfg.CacheVerify {
					e.verifyHit(e.sessions[0], e.eval.NewContribs(), inds[i].Alloc, s)
				}
				inds[i].contrib.CopyFrom(s.contrib)
				e.problem.fill(&inds[i], s.ev, e.space.Dim())
				continue
			}
			e.cache.stats.misses++
			fps = append(fps, fp)
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return
	}
	evs := make([]sched.Evaluation, len(todo))
	e.fanout(len(todo), func(w, lo, hi int) {
		sess := e.sessions[w]
		for k, i := range todo[lo:hi] {
			ev := sess.EvaluateFull(inds[i].Alloc, inds[i].contrib)
			evs[lo+k] = ev
			e.problem.fill(&inds[i], ev, e.space.Dim())
		}
	})
	if e.cache != nil {
		for k, i := range todo {
			e.cache.insert(fps[k], gen, evs[k], inds[i].contrib)
		}
	}
}

// evaluateInPlace (re-)evaluates every offspring, writing objectives and
// contribution caches into recycled buffers. It runs the machine-major
// pipeline in four phases, keeping the serial-probe / parallel-work /
// serial-insert bracket discipline of the chromosome cache so both
// memoization levels evolve identically for every worker count:
//
//  1. parallel — Prepare every chromosome-cache miss: fingerprint its
//     machine buckets from the slot array variation built and inherit
//     the row of every machine whose bucket matches the parent's.
//  2. serial — probe the machine-bucket cache for the remaining
//     machines, in offspring then Need order.
//  3. parallel — copy chromosome-cache hits; for misses, copy
//     machine-cache hit rows, gather and simulate what no cache level
//     supplied, and reduce to objective values.
//  4. serial — insert the freshly simulated machine rows.
//
// Cache hits at either level are bit-identical to re-simulating, so
// hits and misses interleave freely; under FullEvaluation the parent is
// withheld and every machine misses level one. Parent caches and hit
// cache slots are read-only during the fan-outs, so sharing them across
// offspring is safe. (Not annotated //detlint:hotpath: the fan-out
// closures necessarily capture, like the other fanout callers.)
func (e *Engine) evaluateInPlace(inds []Individual) {
	dim := e.space.Dim()
	full := e.cfg.Evaluation == FullEvaluation
	cached := e.cache != nil
	verify := e.cfg.CacheVerify
	mverify := e.cfg.MachineCacheVerify
	e.fanout(len(inds), func(w, lo, hi int) {
		sess := e.sessions[w]
		for i := lo; i < hi; i++ {
			if cached && e.cacheSlot[i] >= 0 {
				continue
			}
			var parent *sched.Contribs
			if !full {
				parent = e.parents[i].contrib
			}
			sess.Prepare(e.slots[i], e.mcounts[i], parent, inds[i].contrib, e.plans[i])
		}
	})
	if e.mcache != nil {
		gen := int64(e.generation)
		for i := range inds {
			if cached && e.cacheSlot[i] >= 0 {
				continue
			}
			plan := e.plans[i]
			fp := inds[i].contrib.FP
			ns := e.needSlot[i][:len(plan.Need)]
			for k, m := range plan.Need {
				slot := e.mcache.lookup(fp[m])
				if slot >= 0 {
					e.mcache.stats.hits++
					e.mcache.touch(slot, gen)
				} else {
					e.mcache.stats.misses++
				}
				ns[k] = int32(slot)
			}
		}
	}
	e.fanout(len(inds), func(w, lo, hi int) {
		sess := e.sessions[w]
		for i := lo; i < hi; i++ {
			ind := &inds[i]
			if cached {
				if slot := e.cacheSlot[i]; slot >= 0 {
					s := &e.cache.slots[slot]
					if verify {
						e.verifyHit(sess, e.verifyContribs[w], ind.Alloc, s)
					}
					ind.contrib.CopyFrom(s.contrib)
					e.problem.fill(ind, s.ev, dim)
					continue
				}
			}
			plan := e.plans[i]
			if e.mcache == nil {
				sess.SimulateAllNeeds(plan, ind.contrib)
			} else {
				ns := e.needSlot[i][:len(plan.Need)]
				miss := e.missKs[w][:0]
				for k := range plan.Need {
					if s := ns[k]; s >= 0 {
						row := e.mcache.slots[s].row
						if mverify {
							e.verifyMachineHit(sess, plan, k, ind.contrib, row)
						}
						ind.contrib.SetRow(int(plan.Need[k]), row)
					} else {
						miss = append(miss, int32(k))
					}
				}
				e.missKs[w] = miss
				sess.SimulateNeedList(miss, plan, ind.contrib)
			}
			ev := sess.Finish(ind.contrib, plan)
			if cached {
				e.cacheEv[i] = ev
			}
			e.problem.fill(ind, ev, dim)
		}
	})
	if e.mcache != nil {
		gen := int64(e.generation)
		for i := range inds {
			if cached && e.cacheSlot[i] >= 0 {
				continue
			}
			plan := e.plans[i]
			contrib := inds[i].contrib
			ns := e.needSlot[i][:len(plan.Need)]
			for k, m := range plan.Need {
				if ns[k] >= 0 {
					continue
				}
				e.mcache.insert(contrib.FP[m], gen, contrib.Row(int(m)))
			}
		}
	}
}

// verifyMachineHit is the machine cache's verify-on-hit debug guard:
// re-simulate the gathered bucket and demand the memoized row be
// bit-identical.
func (e *Engine) verifyMachineHit(sess *sched.DeltaSession, plan *sched.DeltaPlan, k int, dst *sched.Contribs, row sched.MachineRow) {
	m := int(plan.Need[k])
	sess.SimulateNeed(k, plan, dst)
	if dst.Row(m) != row {
		panic("nsga2: machine cache verify-on-hit mismatch (64-bit bucket-fingerprint collision)")
	}
}

// rank computes Rank and Crowding for a population in place.
//
//detlint:hotpath
func (e *Engine) rank(pop []Individual) {
	e.points = e.points[:0]
	for i := range pop {
		e.points = append(e.points, pop[i].Objectives)
	}
	groups := e.rankGroups(e.points)
	for rank, group := range groups {
		dist := e.ranker.Crowding(e.space, e.points, group)
		for k, i := range group {
			pop[i].Rank = rank + 1
			pop[i].Crowding = dist[k]
		}
	}
}

// rankGroups partitions point indices into ascending-rank groups using
// the configured ranking rule. The returned groups alias the engine's
// ranker and are valid until its next use.
func (e *Engine) rankGroups(points [][]float64) [][]int {
	if e.cfg.Ranking == DominanceCount {
		return e.ranker.DominanceCountGroups(e.space, points)
	}
	return e.ranker.Fronts(e.space, points)
}

// selectSurvivors picks the best n individuals from e.meta: whole rank
// groups while they fit, then the most crowded-out members of the next
// group by descending crowding distance (Algorithm 1 steps 7–10). The
// buffers of everyone left behind return to the arena.
//
//detlint:hotpath
func (e *Engine) selectSurvivors(n int) {
	meta := e.meta
	e.points = e.points[:0]
	for i := range meta {
		e.points = append(e.points, meta[i].Objectives)
	}
	groups := e.rankGroups(e.points)
	if cap(e.picked) < len(meta) {
		e.picked = make([]bool, len(meta))
	}
	picked := e.picked[:len(meta)]
	for i := range picked {
		picked[i] = false
	}
	e.popBuf = e.popBuf[:0]
	for rank, group := range groups {
		dist := e.ranker.Crowding(e.space, e.points, group)
		for k, i := range group {
			meta[i].Rank = rank + 1
			meta[i].Crowding = dist[k]
		}
		if len(e.popBuf)+len(group) <= n {
			for _, i := range group {
				e.popBuf = append(e.popBuf, meta[i])
				picked[i] = true
			}
			if len(e.popBuf) == n {
				break
			}
			continue
		}
		// Partial group: take the most isolated by crowding distance.
		rem := n - len(e.popBuf)
		e.groupOrder = e.groupOrder[:0]
		for k := range group {
			e.groupOrder = append(e.groupOrder, k)
		}
		e.crowdOrd.dist, e.crowdOrd.order = dist, e.groupOrder
		sort.Stable(&e.crowdOrd)
		for _, k := range e.groupOrder[:rem] {
			e.popBuf = append(e.popBuf, meta[group[k]])
			picked[group[k]] = true
		}
		break
	}
	// Recycle the chromosomes, objective vectors, and contribution
	// caches of the fallen.
	for i := range meta {
		if !picked[i] {
			e.arena.putAlloc(meta[i].Alloc)
			e.arena.putObjs(meta[i].Objectives)
			e.arena.putContrib(meta[i].contrib)
			meta[i] = Individual{}
		}
	}
	e.pop, e.popBuf = e.popBuf, e.pop
	// Re-rank the survivor population so Rank/Crowding reflect the new
	// population rather than the meta-population.
	e.rank(e.pop)
}

// crowdOrderSorter stably orders group positions by descending crowding
// distance.
type crowdOrderSorter struct {
	dist  []float64
	order []int
}

func (s *crowdOrderSorter) Len() int           { return len(s.order) }
func (s *crowdOrderSorter) Less(a, b int) bool { return s.dist[s.order[a]] > s.dist[s.order[b]] }
func (s *crowdOrderSorter) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }
