// Package nsga2 adapts the Nondominated Sorting Genetic Algorithm II
// (Deb et al., 2002) to the paper's bi-objective resource allocation
// problem (§IV-D).
//
// A gene is a task: it carries the machine the task executes on and the
// task's global scheduling order. A chromosome is a complete resource
// allocation — one gene per task, the i-th gene in every chromosome
// referring to the i-th task by arrival order. Crossover swaps a
// contiguous gene segment (machines and orders) between two chromosomes;
// mutation reassigns one gene's machine to a random eligible machine and
// swaps the global scheduling orders of two genes. Survivor selection is
// elitist: parents and offspring are merged into a 2N meta-population,
// nondominated-sorted, and refilled front by front with crowding-distance
// truncation of the last admitted front.
//
// Because segment swap can duplicate global scheduling orders, offspring
// orders are repaired back into permutations by re-ranking (stable sort
// by swapped value, ties by gene index), which preserves the relative
// order the crossover expressed; see DESIGN.md §4.
package nsga2

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// Ranking selects the survivor-ranking rule.
type Ranking int

const (
	// DebFronts uses Deb's fast nondominated sort (the NSGA-II default).
	DebFronts Ranking = iota
	// DominanceCount ranks each solution 1 + the number of solutions
	// dominating it, as the paper's §IV-D describes the rank.
	DominanceCount
)

func (r Ranking) String() string {
	switch r {
	case DebFronts:
		return "deb-fronts"
	case DominanceCount:
		return "dominance-count"
	default:
		return fmt.Sprintf("Ranking(%d)", int(r))
	}
}

// Individual is one chromosome with its cached evaluation.
type Individual struct {
	Alloc *sched.Allocation
	// Objectives is {total utility earned, total energy consumed in J}.
	Objectives []float64
	// Rank is 1-based; rank 1 is the current Pareto-optimal set.
	Rank int
	// Crowding is the crowding distance within the individual's front.
	Crowding float64
}

// Clone deep-copies the individual.
func (ind Individual) Clone() Individual {
	return Individual{
		Alloc:      ind.Alloc.Clone(),
		Objectives: append([]float64(nil), ind.Objectives...),
		Rank:       ind.Rank,
		Crowding:   ind.Crowding,
	}
}

// Config parameterizes the engine.
type Config struct {
	// PopulationSize is N; it must be even and >= 2. Default 100.
	PopulationSize int
	// MutationRate is the per-offspring mutation probability (selected by
	// experimentation in the paper). Default 0.1.
	MutationRate float64
	// Ranking selects the survivor-ranking rule. Default DebFronts.
	Ranking Ranking
	// Seeds are allocations injected into the initial population; the
	// remainder is random. Seeds beyond PopulationSize are ignored.
	Seeds []*sched.Allocation
	// Workers bounds parallel fitness evaluation; 0 means GOMAXPROCS,
	// 1 forces serial evaluation.
	Workers int
	// Repair selects how offspring order arrays are restored into
	// permutations after crossover. Default RerankRepair.
	Repair Repair
	// Selection selects how crossover parents are drawn. Default
	// UniformSelection (as the paper describes); TournamentSelection is
	// the canonical NSGA-II binary tournament on (rank, crowding).
	Selection Selection
	// Problem optionally replaces the paper's utility/energy objective
	// pair. Nil means UtilityEnergyProblem. Custom problems let the same
	// engine solve e.g. the makespan/energy formulation of the authors'
	// prior work (Friese et al., INFOCOMP 2012).
	Problem *Problem
}

// Problem defines the objective space the engine optimizes over.
type Problem struct {
	// Name identifies the problem in diagnostics.
	Name string
	// Space declares the per-objective optimization senses.
	Space moea.Space
	// Objectives maps a schedule evaluation to an objective vector
	// matching Space.
	Objectives func(sched.Evaluation) []float64
}

// UtilityEnergyProblem is the paper's bi-objective problem: maximize
// total utility earned, minimize total energy consumed.
func UtilityEnergyProblem() *Problem {
	return &Problem{
		Name:  "utility-energy",
		Space: moea.UtilityEnergySpace(),
		Objectives: func(ev sched.Evaluation) []float64 {
			return []float64{ev.Utility, ev.Energy}
		},
	}
}

// MakespanEnergyProblem is the prior-work formulation the paper contrasts
// itself against in §II (ref [3]): minimize makespan, minimize energy.
func MakespanEnergyProblem() *Problem {
	return &Problem{
		Name:  "makespan-energy",
		Space: moea.NewSpace(moea.Minimize, moea.Minimize),
		Objectives: func(ev sched.Evaluation) []float64 {
			return []float64{ev.Makespan, ev.Energy}
		},
	}
}

// Selection selects the parent-selection rule.
type Selection int

const (
	// UniformSelection draws both crossover parents uniformly at random
	// from the population (the paper's §IV-D operator).
	UniformSelection Selection = iota
	// TournamentSelection draws each parent as the winner of a binary
	// tournament under the crowded-comparison operator: lower rank wins;
	// equal ranks are broken by larger crowding distance (Deb 2002).
	TournamentSelection
)

func (s Selection) String() string {
	switch s {
	case UniformSelection:
		return "uniform"
	case TournamentSelection:
		return "tournament"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Repair selects the post-crossover permutation repair strategy.
type Repair int

const (
	// RerankRepair stably re-ranks the swapped order values into a
	// permutation, preserving the relative ordering crossover expressed
	// (the default; see DESIGN.md §4).
	RerankRepair Repair = iota
	// ShuffleRepair discards the order information and draws a fresh
	// random permutation. Ablation baseline: it shows how much of the
	// search signal lives in the inherited scheduling order.
	ShuffleRepair
)

func (r Repair) String() string {
	switch r {
	case RerankRepair:
		return "rerank"
	case ShuffleRepair:
		return "shuffle"
	default:
		return fmt.Sprintf("Repair(%d)", int(r))
	}
}

func (c *Config) fillDefaults() {
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

func (c *Config) validate() error {
	if c.PopulationSize < 2 || c.PopulationSize%2 != 0 {
		return fmt.Errorf("nsga2: population size %d, want even and >= 2", c.PopulationSize)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("nsga2: mutation rate %v outside [0,1]", c.MutationRate)
	}
	if c.Workers < 0 {
		return fmt.Errorf("nsga2: workers %d, want >= 0", c.Workers)
	}
	switch c.Ranking {
	case DebFronts, DominanceCount:
	default:
		return fmt.Errorf("nsga2: unknown ranking %d", int(c.Ranking))
	}
	switch c.Repair {
	case RerankRepair, ShuffleRepair:
	default:
		return fmt.Errorf("nsga2: unknown repair strategy %d", int(c.Repair))
	}
	switch c.Selection {
	case UniformSelection, TournamentSelection:
	default:
		return fmt.Errorf("nsga2: unknown selection %d", int(c.Selection))
	}
	return nil
}

// Engine runs NSGA-II over a fixed evaluator. It is not safe for
// concurrent use; fitness evaluation parallelism is internal.
type Engine struct {
	cfg     Config
	eval    *sched.Evaluator
	problem *Problem
	space   moea.Space
	src     *rng.Source

	pop        []Individual
	generation int

	sessions []*sched.Session // one per worker
}

// New creates an engine with an initial population: the seeds (validated)
// followed by random chromosomes, all evaluated and ranked.
func New(eval *sched.Evaluator, cfg Config, src *rng.Source) (*Engine, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("nsga2: nil random source")
	}
	problem := cfg.Problem
	if problem == nil {
		problem = UtilityEnergyProblem()
	}
	if problem.Objectives == nil || problem.Space.Dim() < 2 {
		return nil, fmt.Errorf("nsga2: problem %q needs an objective function and >= 2 senses", problem.Name)
	}
	e := &Engine{
		cfg:     cfg,
		eval:    eval,
		problem: problem,
		space:   problem.Space,
		src:     src,
	}
	e.sessions = make([]*sched.Session, cfg.Workers)
	for i := range e.sessions {
		e.sessions[i] = eval.NewSession()
	}

	e.pop = make([]Individual, 0, cfg.PopulationSize)
	for _, s := range cfg.Seeds {
		if len(e.pop) == cfg.PopulationSize {
			break
		}
		if err := eval.Validate(s); err != nil {
			return nil, fmt.Errorf("nsga2: invalid seed: %w", err)
		}
		e.pop = append(e.pop, Individual{Alloc: s.Clone()})
	}
	for len(e.pop) < cfg.PopulationSize {
		e.pop = append(e.pop, Individual{Alloc: eval.RandomAllocation(src)})
	}
	e.evaluateAll(e.pop)
	e.rank(e.pop)
	return e, nil
}

// Generation returns the number of completed generations.
func (e *Engine) Generation() int { return e.generation }

// Population returns a deep copy of the current population.
func (e *Engine) Population() []Individual {
	out := make([]Individual, len(e.pop))
	for i, ind := range e.pop {
		out[i] = ind.Clone()
	}
	return out
}

// ParetoFront returns deep copies of the rank-1 individuals, sorted by
// descending utility.
func (e *Engine) ParetoFront() []Individual {
	var out []Individual
	for _, ind := range e.pop {
		if ind.Rank == 1 {
			out = append(out, ind.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Objectives[0], out[j].Objectives[0]
		if e.space.Senses[0] == moea.Maximize {
			return a > b
		}
		return a < b
	})
	return out
}

// FrontPoints returns the rank-1 objective vectors (utility, energy),
// sorted by descending utility.
func (e *Engine) FrontPoints() [][]float64 {
	front := e.ParetoFront()
	out := make([][]float64, len(front))
	for i, ind := range front {
		out[i] = ind.Objectives
	}
	return out
}

// Elites returns deep copies of the n best individuals under the
// crowded-comparison order (rank ascending, crowding descending).
func (e *Engine) Elites(n int) []Individual {
	idx := make([]int, len(e.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := &e.pop[idx[a]], &e.pop[idx[b]]
		if ia.Rank != ib.Rank {
			return ia.Rank < ib.Rank
		}
		return ia.Crowding > ib.Crowding
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]Individual, n)
	for i := 0; i < n; i++ {
		out[i] = e.pop[idx[i]].Clone()
	}
	return out
}

// Inject replaces the engine's worst individuals (rank descending,
// crowding ascending) with copies of the given individuals, re-ranking
// the population. Injected individuals must be valid for the engine's
// evaluator; unevaluated ones are evaluated under the engine's problem.
func (e *Engine) Inject(inds []Individual) error {
	if len(inds) == 0 {
		return nil
	}
	if len(inds) > len(e.pop) {
		inds = inds[:len(e.pop)]
	}
	clones := make([]Individual, len(inds))
	for i, ind := range inds {
		if err := e.eval.Validate(ind.Alloc); err != nil {
			return fmt.Errorf("nsga2: injected individual %d invalid: %w", i, err)
		}
		c := ind.Clone()
		c.Objectives = nil // re-evaluate under this engine's problem
		clones[i] = c
	}
	e.evaluateAll(clones)
	idx := make([]int, len(e.pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := &e.pop[idx[a]], &e.pop[idx[b]]
		if ia.Rank != ib.Rank {
			return ia.Rank > ib.Rank
		}
		return ia.Crowding < ib.Crowding
	})
	for i, c := range clones {
		e.pop[idx[i]] = c
	}
	e.rank(e.pop)
	return nil
}

// Step advances the engine by one generation (Algorithm 1 steps 3–11).
func (e *Engine) Step() {
	n := e.cfg.PopulationSize
	offspring := make([]Individual, 0, n)
	// Step 3–4: N/2 crossovers, two offspring each.
	for len(offspring) < n {
		p1 := e.selectParent()
		p2 := e.selectParent()
		c1, c2 := e.crossover(p1, p2)
		offspring = append(offspring, Individual{Alloc: c1}, Individual{Alloc: c2})
	}
	offspring = offspring[:n]
	// Step 5: mutate each offspring with probability MutationRate.
	for i := range offspring {
		if e.src.Bool(e.cfg.MutationRate) {
			e.mutate(offspring[i].Alloc)
		}
	}
	e.evaluateAll(offspring)

	// Step 6: merge into the 2N meta-population (elitism).
	meta := make([]Individual, 0, 2*n)
	meta = append(meta, e.pop...)
	meta = append(meta, offspring...)

	// Steps 7–10: rank, fill by rank groups, truncate by crowding.
	e.pop = e.selectSurvivors(meta, n)
	e.generation++
}

// Run advances the engine by the given number of generations.
func (e *Engine) Run(generations int) {
	for i := 0; i < generations; i++ {
		e.Step()
	}
}

// RunCheckpoints advances the engine through increasing generation
// checkpoints, invoking fn with the cumulative generation count after
// each. Checkpoints at or below the current generation are invoked
// without stepping.
func (e *Engine) RunCheckpoints(checkpoints []int, fn func(generation int, front []Individual)) error {
	prev := 0
	for _, cp := range checkpoints {
		if cp < prev {
			return fmt.Errorf("nsga2: checkpoints must be nondecreasing, got %d after %d", cp, prev)
		}
		prev = cp
		for e.generation < cp {
			e.Step()
		}
		fn(e.generation, e.ParetoFront())
	}
	return nil
}

// selectParent draws one crossover parent according to the configured
// selection rule.
func (e *Engine) selectParent() *sched.Allocation {
	n := len(e.pop)
	switch e.cfg.Selection {
	case TournamentSelection:
		a, b := e.src.Intn(n), e.src.Intn(n)
		ia, ib := &e.pop[a], &e.pop[b]
		switch {
		case ia.Rank < ib.Rank:
			return ia.Alloc
		case ib.Rank < ia.Rank:
			return ib.Alloc
		case ia.Crowding >= ib.Crowding:
			return ia.Alloc
		default:
			return ib.Alloc
		}
	default:
		return e.pop[e.src.Intn(n)].Alloc
	}
}

// crossover implements the paper's operator: choose two gene indices
// uniformly at random and swap the inclusive segment between copies of
// the parents — machine assignments and global scheduling orders both —
// then repair the order permutations.
func (e *Engine) crossover(p1, p2 *sched.Allocation) (*sched.Allocation, *sched.Allocation) {
	n := p1.Len()
	c1, c2 := p1.Clone(), p2.Clone()
	i := e.src.Intn(n)
	j := e.src.Intn(n)
	if i > j {
		i, j = j, i
	}
	for k := i; k <= j; k++ {
		c1.Machine[k], c2.Machine[k] = c2.Machine[k], c1.Machine[k]
		c1.Order[k], c2.Order[k] = c2.Order[k], c1.Order[k]
	}
	switch e.cfg.Repair {
	case ShuffleRepair:
		copy(c1.Order, e.src.Perm(n))
		copy(c2.Order, e.src.Perm(n))
	default:
		repairOrder(c1.Order)
		repairOrder(c2.Order)
	}
	return c1, c2
}

// repairOrder rewrites ord into a permutation of [0, len): genes are
// ranked by their (possibly duplicated) swapped order values, ties broken
// by gene index, preserving the relative ordering the values express.
func repairOrder(ord []int) {
	n := len(ord)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ord[idx[a]] < ord[idx[b]] })
	for pos, gene := range idx {
		ord[gene] = pos
	}
}

// mutate implements the paper's operator: reassign one random gene to a
// random eligible machine, and swap the global scheduling orders of two
// random genes.
func (e *Engine) mutate(a *sched.Allocation) {
	n := a.Len()
	g := e.src.Intn(n)
	el := e.eval.Eligible(e.eval.Trace().Tasks[g].Type)
	a.Machine[g] = el[e.src.Intn(len(el))]
	x, y := e.src.Intn(n), e.src.Intn(n)
	a.Order[x], a.Order[y] = a.Order[y], a.Order[x]
}

// evaluateAll fills Objectives for individuals lacking them, fanning out
// across the configured workers. Results are deterministic because each
// individual's evaluation is independent of scheduling.
func (e *Engine) evaluateAll(inds []Individual) {
	todo := make([]int, 0, len(inds))
	for i := range inds {
		if inds[i].Objectives == nil {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return
	}
	workers := e.cfg.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		sess := e.sessions[0]
		for _, i := range todo {
			inds[i].Objectives = e.problem.Objectives(sess.Evaluate(inds[i].Alloc))
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(todo) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(todo) {
			break
		}
		hi := lo + chunk
		if hi > len(todo) {
			hi = len(todo)
		}
		wg.Add(1)
		go func(sess *sched.Session, part []int) {
			defer wg.Done()
			for _, i := range part {
				inds[i].Objectives = e.problem.Objectives(sess.Evaluate(inds[i].Alloc))
			}
		}(e.sessions[w], todo[lo:hi])
	}
	wg.Wait()
}

// rank computes Rank and Crowding for a population in place.
func (e *Engine) rank(pop []Individual) {
	points := make([][]float64, len(pop))
	for i := range pop {
		points[i] = pop[i].Objectives
	}
	groups := e.rankGroups(points)
	for rank, group := range groups {
		dist := e.space.CrowdingDistance(points, group)
		for k, i := range group {
			pop[i].Rank = rank + 1
			pop[i].Crowding = dist[k]
		}
	}
}

// rankGroups partitions point indices into ascending-rank groups using
// the configured ranking rule.
func (e *Engine) rankGroups(points [][]float64) [][]int {
	switch e.cfg.Ranking {
	case DominanceCount:
		ranks := e.space.DominanceCountRanks(points)
		byRank := map[int][]int{}
		maxRank := 0
		for i, r := range ranks {
			byRank[r] = append(byRank[r], i)
			if r > maxRank {
				maxRank = r
			}
		}
		var groups [][]int
		for r := 1; r <= maxRank; r++ {
			if g, ok := byRank[r]; ok {
				groups = append(groups, g)
			}
		}
		return groups
	default:
		return e.space.FastNondominatedSort(points)
	}
}

// selectSurvivors picks the best n individuals from meta: whole rank
// groups while they fit, then the most crowded-out members of the next
// group by descending crowding distance (Algorithm 1 steps 7–10).
func (e *Engine) selectSurvivors(meta []Individual, n int) []Individual {
	points := make([][]float64, len(meta))
	for i := range meta {
		points[i] = meta[i].Objectives
	}
	groups := e.rankGroups(points)
	next := make([]Individual, 0, n)
	for rank, group := range groups {
		dist := e.space.CrowdingDistance(points, group)
		for k, i := range group {
			meta[i].Rank = rank + 1
			meta[i].Crowding = dist[k]
		}
		if len(next)+len(group) <= n {
			for _, i := range group {
				next = append(next, meta[i])
			}
			if len(next) == n {
				break
			}
			continue
		}
		// Partial group: take the most isolated by crowding distance.
		rem := n - len(next)
		order := make([]int, len(group))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return dist[order[a]] > dist[order[b]] })
		for _, k := range order[:rem] {
			next = append(next, meta[group[k]])
		}
		break
	}
	// Re-rank the survivor population so Rank/Crowding reflect the new
	// population rather than the meta-population.
	e.rank(next)
	return next
}
