package nsga2

import (
	"testing"

	"tradeoff/internal/heuristics"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// comparePopulations fails unless the two engines hold bitwise-identical
// populations: genotypes, objectives, ranks, and crowding distances.
func comparePopulations(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	if len(a.pop) != len(b.pop) {
		t.Fatalf("%s: population sizes %d vs %d", label, len(a.pop), len(b.pop))
	}
	for i := range a.pop {
		ia, ib := &a.pop[i], &b.pop[i]
		for g := range ia.Alloc.Machine {
			if ia.Alloc.Machine[g] != ib.Alloc.Machine[g] || ia.Alloc.Order[g] != ib.Alloc.Order[g] {
				t.Fatalf("%s: individual %d gene %d diverged", label, i, g)
			}
		}
		for d := range ia.Objectives {
			if ia.Objectives[d] != ib.Objectives[d] {
				t.Fatalf("%s: individual %d objective %d: %v vs %v",
					label, i, d, ia.Objectives[d], ib.Objectives[d])
			}
		}
		if ia.Rank != ib.Rank || ia.Crowding != ib.Crowding {
			t.Fatalf("%s: individual %d rank/crowding diverged", label, i)
		}
	}
}

// TestDeltaEngineMatchesFullEngine is the engine-level bit-identity
// property: a DeltaEvaluation engine and a FullEvaluation engine driven
// by the same rng seed must produce identical populations generation by
// generation, across repair strategies, selection rules, worker counts,
// seeded populations, and idle-power evaluators.
func TestDeltaEngineMatchesFullEngine(t *testing.T) {
	cases := []struct {
		name  string
		tasks int
		cfg   Config
		idle  bool
		seed  bool
	}{
		{name: "base", tasks: 60, cfg: Config{PopulationSize: 20}},
		{name: "shuffle-repair", tasks: 60, cfg: Config{PopulationSize: 20, Repair: ShuffleRepair}},
		{name: "tournament", tasks: 60, cfg: Config{PopulationSize: 20, Selection: TournamentSelection}},
		{name: "workers", tasks: 60, cfg: Config{PopulationSize: 20, Workers: 4}},
		{name: "idle-power", tasks: 60, cfg: Config{PopulationSize: 20}, idle: true},
		{name: "seeded", tasks: 80, cfg: Config{PopulationSize: 16}, seed: true},
		{name: "high-mutation", tasks: 40, cfg: Config{PopulationSize: 12, MutationRate: 0.9}},
		{name: "always-diff", tasks: 60, cfg: Config{PopulationSize: 20, DeltaMaxDirtyFrac: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkEngine := func(mode Evaluation, workers int) *Engine {
				e := newEval(t, tc.tasks)
				if tc.idle {
					watts := make([]float64, e.System().NumMachineTypes())
					for i := range watts {
						watts[i] = 3 + float64(i)
					}
					if err := e.SetIdlePower(watts); err != nil {
						t.Fatal(err)
					}
				}
				cfg := tc.cfg
				cfg.Evaluation = mode
				cfg.Workers = workers
				if tc.seed {
					cfg.Seeds = []*sched.Allocation{heuristics.BuildMinEnergy(e)}
				}
				eng, err := New(e, cfg, rng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			workers := tc.cfg.Workers
			if workers == 0 {
				workers = 1
			}
			delta := mkEngine(DeltaEvaluation, workers)
			full := mkEngine(FullEvaluation, 1)
			comparePopulations(t, tc.name+"/gen0", delta, full)
			for gen := 1; gen <= 12; gen++ {
				delta.Step()
				full.Step()
				comparePopulations(t, tc.name, delta, full)
			}
		})
	}
}

// TestDeltaEngineMatchesFullWithInject checks the parent-cache fallback
// for individuals entering the population mid-run.
func TestDeltaEngineMatchesFullWithInject(t *testing.T) {
	delta := newEngine(t, 50, Config{PopulationSize: 16}, 5)
	full := newEngine(t, 50, Config{PopulationSize: 16, Evaluation: FullEvaluation}, 5)
	delta.Run(5)
	full.Run(5)
	inject := []Individual{
		{Alloc: delta.eval.RandomAllocation(rng.New(99))},
		{Alloc: heuristics.BuildMinEnergy(delta.eval)},
	}
	if err := delta.Inject(inject); err != nil {
		t.Fatal(err)
	}
	if err := full.Inject(inject); err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 8; gen++ {
		delta.Step()
		full.Step()
		comparePopulations(t, "post-inject", delta, full)
	}
}

// TestDeltaEngineMatchesFullAfterRestore checks the snapshot path: a
// restored population is fully re-evaluated, and continuing under delta
// evaluation must match a full-evaluation continuation.
func TestDeltaEngineMatchesFullAfterRestore(t *testing.T) {
	src := newEngine(t, 40, Config{PopulationSize: 12}, 8)
	src.Run(4)
	snap := src.Snapshot()

	delta := newEngine(t, 40, Config{PopulationSize: 12}, 8)
	full := newEngine(t, 40, Config{PopulationSize: 12, Evaluation: FullEvaluation}, 8)
	if err := delta.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := full.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 8; gen++ {
		delta.Step()
		full.Step()
		comparePopulations(t, "post-restore", delta, full)
	}
}

// FuzzDeltaEngine drives arbitrary engine configurations through the
// delta-vs-full population equality check.
func FuzzDeltaEngine(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(10), false, false, uint8(3))
	f.Add(uint64(9), uint8(90), uint8(8), true, true, uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, tasksRaw, popRaw uint8, shuffle, tournament bool, gens uint8) {
		tasks := 2 + int(tasksRaw)%100
		pop := 2 * (1 + int(popRaw)%10)
		cfg := Config{PopulationSize: pop}
		if shuffle {
			cfg.Repair = ShuffleRepair
		}
		if tournament {
			cfg.Selection = TournamentSelection
		}
		fullCfg := cfg
		fullCfg.Evaluation = FullEvaluation
		delta := newEngine(t, tasks, cfg, seed|1)
		full := newEngine(t, tasks, fullCfg, seed|1)
		for g := 0; g < int(gens)%10+1; g++ {
			delta.Step()
			full.Step()
		}
		comparePopulations(t, "fuzz", delta, full)
	})
}
