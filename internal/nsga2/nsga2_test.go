package nsga2

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tradeoff/internal/data"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

func newEval(t testing.TB, n int) *sched.Evaluator {
	t.Helper()
	sys := data.RealSystem()
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: 900}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newEngine(t testing.TB, tasks int, cfg Config, seed uint64) *Engine {
	t.Helper()
	eng, err := New(newEval(t, tasks), cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestConfigValidation(t *testing.T) {
	e := newEval(t, 10)
	cases := []Config{
		{PopulationSize: 3},                      // odd
		{PopulationSize: -4},                     // negative
		{PopulationSize: 10, MutationRate: 1.5},  // bad rate
		{PopulationSize: 10, MutationRate: -0.5}, // bad rate
		{PopulationSize: 10, Workers: -1},        // bad workers
		{PopulationSize: 10, Ranking: Ranking(9)},
		{PopulationSize: 10, Repair: Repair(9)},
	}
	for i, cfg := range cases {
		if _, err := New(e, cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(e, Config{}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestInitialPopulationSizeAndValidity(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 20}, 1)
	pop := eng.Population()
	if len(pop) != 20 {
		t.Fatalf("population size %d, want 20", len(pop))
	}
	for i, ind := range pop {
		if ind.Objectives == nil || len(ind.Objectives) != 2 {
			t.Fatalf("individual %d not evaluated", i)
		}
		if ind.Rank < 1 {
			t.Fatalf("individual %d not ranked", i)
		}
	}
}

func TestSeedsEnterInitialPopulation(t *testing.T) {
	e := newEval(t, 60)
	seed := heuristics.BuildMinEnergy(e)
	eng, err := New(e, Config{PopulationSize: 10, Seeds: []*sched.Allocation{seed}}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := e.Evaluate(seed)
	found := false
	for _, ind := range eng.Population() {
		if math.Abs(ind.Objectives[0]-want.Utility) < 1e-9 && math.Abs(ind.Objectives[1]-want.Energy) < 1e-9 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("seed objectives not present in initial population")
	}
}

func TestInvalidSeedRejected(t *testing.T) {
	e := newEval(t, 10)
	bad := sched.NewAllocation(3) // wrong length
	if _, err := New(e, Config{PopulationSize: 4, Seeds: []*sched.Allocation{bad}}, rng.New(3)); err == nil {
		t.Fatal("invalid seed accepted")
	}
}

func TestStepKeepsPopulationValid(t *testing.T) {
	eng := newEngine(t, 50, Config{PopulationSize: 16, MutationRate: 0.5}, 4)
	e := eng.eval
	for g := 0; g < 20; g++ {
		eng.Step()
		for i, ind := range eng.pop {
			if err := e.Validate(ind.Alloc); err != nil {
				t.Fatalf("gen %d individual %d invalid: %v", g, i, err)
			}
		}
	}
	if eng.Generation() != 20 {
		t.Fatalf("Generation = %d", eng.Generation())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() [][]float64 {
		eng := newEngine(t, 40, Config{PopulationSize: 12, Workers: 4}, 7)
		eng.Run(15)
		return eng.FrontPoints()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatalf("fronts diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	runWith := func(workers int) [][]float64 {
		eng := newEngine(t, 40, Config{PopulationSize: 12, Workers: workers}, 8)
		eng.Run(10)
		return eng.FrontPoints()
	}
	serial := runWith(1)
	parallel := runWith(8)
	if len(serial) != len(parallel) {
		t.Fatalf("front sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i][0] != parallel[i][0] || serial[i][1] != parallel[i][1] {
			t.Fatalf("serial/parallel fronts diverge at %d", i)
		}
	}
}

func TestElitismExtremesNeverRegress(t *testing.T) {
	eng := newEngine(t, 60, Config{PopulationSize: 20, MutationRate: 0.3}, 9)
	bestU, bestE := math.Inf(-1), math.Inf(1)
	for _, ind := range eng.pop {
		bestU = math.Max(bestU, ind.Objectives[0])
		bestE = math.Min(bestE, ind.Objectives[1])
	}
	for g := 0; g < 40; g++ {
		eng.Step()
		curU, curE := math.Inf(-1), math.Inf(1)
		for _, ind := range eng.pop {
			curU = math.Max(curU, ind.Objectives[0])
			curE = math.Min(curE, ind.Objectives[1])
		}
		if curU < bestU-1e-9 {
			t.Fatalf("gen %d: best utility regressed %v -> %v", g, bestU, curU)
		}
		if curE > bestE+1e-9 {
			t.Fatalf("gen %d: best energy regressed %v -> %v", g, bestE, curE)
		}
		bestU, bestE = curU, curE
	}
}

func TestHypervolumeNonDecreasing(t *testing.T) {
	eng := newEngine(t, 60, Config{PopulationSize: 20}, 10)
	sp := moea.UtilityEnergySpace()
	// Fixed, clearly dominated reference point.
	ref := []float64{0, 1e12}
	prev := sp.Hypervolume2D(eng.FrontPoints(), ref)
	for g := 0; g < 30; g++ {
		eng.Step()
		hv := sp.Hypervolume2D(eng.FrontPoints(), ref)
		if hv < prev-1e-6 {
			t.Fatalf("gen %d: hypervolume decreased %v -> %v", g, prev, hv)
		}
		prev = hv
	}
}

func TestFrontImprovesOverRandom(t *testing.T) {
	eng := newEngine(t, 80, Config{PopulationSize: 30}, 11)
	initial := eng.FrontPoints()
	eng.Run(60)
	final := eng.FrontPoints()
	sp := moea.UtilityEnergySpace()
	ref := sp.ReferenceFrom(0.05, initial, final)
	hv0 := sp.Hypervolume2D(initial, ref)
	hv1 := sp.Hypervolume2D(final, ref)
	if !(hv1 > hv0) {
		t.Fatalf("no improvement: HV %v -> %v", hv0, hv1)
	}
}

func TestParetoFrontMutuallyNondominated(t *testing.T) {
	eng := newEngine(t, 50, Config{PopulationSize: 20}, 12)
	eng.Run(10)
	sp := moea.UtilityEnergySpace()
	front := eng.FrontPoints()
	for i := range front {
		for j := range front {
			if i != j && sp.Dominates(front[i], front[j]) {
				t.Fatal("rank-1 set contains dominated point")
			}
		}
	}
	// Sorted by utility descending.
	if !sort.SliceIsSorted(front, func(i, j int) bool { return front[i][0] > front[j][0] }) {
		t.Fatal("front not sorted by utility")
	}
}

func TestRepairOrderProperty(t *testing.T) {
	check := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		src := rng.New(uint64(seed))
		ord := make([]int32, n)
		for i := range ord {
			ord[i] = int32(src.Intn(n)) // duplicates likely
		}
		before := append([]int32(nil), ord...)
		repairOrder(ord)
		// Must be a permutation.
		seen := make([]bool, n)
		for _, v := range ord {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Must preserve strict relative order of distinct values.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if before[i] < before[j] && ord[i] > ord[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairOrderIdentityOnPermutation(t *testing.T) {
	ord := []int32{3, 1, 0, 2}
	repairOrder(ord)
	want := []int32{3, 1, 0, 2}
	for i := range ord {
		if ord[i] != want[i] {
			t.Fatalf("repair changed a valid permutation: %v", ord)
		}
	}
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 13)
	e := eng.eval
	scratch := make([]int32, e.NumTasks())
	scratch2 := make([]int32, e.NumTasks())
	s1 := make([]uint64, e.NumTasks())
	s2 := make([]uint64, e.NumTasks())
	n1 := make([]int32, e.NumMachines())
	n2 := make([]int32, e.NumMachines())
	for trial := 0; trial < 100; trial++ {
		c1 := e.RandomAllocation(eng.src)
		c2 := e.RandomAllocation(eng.src)
		lo, hi := eng.crossInto(c1, c2, s1, s2, n1, n2, eng.src, scratch, scratch2)
		if lo < 0 || hi >= e.NumTasks() || lo > hi {
			t.Fatalf("swapped segment [%d,%d] out of range", lo, hi)
		}
		if err := e.Validate(c1); err != nil {
			t.Fatalf("child 1 invalid: %v", err)
		}
		if err := e.Validate(c2); err != nil {
			t.Fatalf("child 2 invalid: %v", err)
		}
	}
}

func TestMutationProducesValidAllocations(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 14)
	e := eng.eval
	a := e.RandomAllocation(eng.src)
	dirty := make([]bool, e.NumMachines())
	slots := make([]uint64, e.NumTasks())
	counts := make([]int32, e.NumMachines())
	for i, o := range a.Order {
		slots[o] = sched.PackSlot(a.Machine[i], i)
		if m := a.Machine[i]; m >= 0 {
			counts[m]++
		}
	}
	for trial := 0; trial < 200; trial++ {
		for m := range dirty {
			dirty[m] = false
		}
		eng.mutateWith(a, slots, counts, eng.src, dirty)
		if err := e.Validate(a); err != nil {
			t.Fatalf("mutated allocation invalid: %v", err)
		}
		n := 0
		for _, d := range dirty {
			if d {
				n++
			}
		}
		if n == 0 || n > 4 {
			t.Fatalf("mutation dirtied %d machines, want 1..4", n)
		}
	}
}

func TestShuffleRepairStillValid(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10, Repair: ShuffleRepair}, 15)
	eng.Run(5)
	for i, ind := range eng.pop {
		if err := eng.eval.Validate(ind.Alloc); err != nil {
			t.Fatalf("individual %d invalid under shuffle repair: %v", i, err)
		}
	}
}

func TestDominanceCountRankingRuns(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 16, Ranking: DominanceCount}, 16)
	eng.Run(10)
	front := eng.FrontPoints()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	sp := moea.UtilityEnergySpace()
	for i := range front {
		for j := range front {
			if i != j && sp.Dominates(front[i], front[j]) {
				t.Fatal("dominance-count front contains dominated point")
			}
		}
	}
}

func TestRunCheckpoints(t *testing.T) {
	eng := newEngine(t, 30, Config{PopulationSize: 10}, 17)
	var gens []int
	err := eng.RunCheckpoints([]int{2, 5, 5, 9}, func(g int, front []Individual) {
		gens = append(gens, g)
		if len(front) == 0 {
			t.Fatal("empty front at checkpoint")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 5, 5, 9}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("checkpoint generations %v, want %v", gens, want)
		}
	}
	if err := eng.RunCheckpoints([]int{12, 10}, func(int, []Individual) {}); err == nil {
		t.Fatal("decreasing checkpoint list accepted")
	}
}

func TestPopulationReturnsCopies(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 10}, 18)
	pop := eng.Population()
	pop[0].Alloc.Machine[0] = -99
	pop[0].Objectives[0] = -99
	if eng.pop[0].Alloc.Machine[0] == -99 || eng.pop[0].Objectives[0] == -99 {
		t.Fatal("Population exposes internal state")
	}
}

func TestSelectSurvivorsPrefersLowerRank(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 8}, 19)
	eng.Run(5)
	// Every survivor must have rank computed, and if any individual has
	// rank > 1 then the front-1 count must be below the population size.
	front1 := 0
	for _, ind := range eng.pop {
		if ind.Rank == 1 {
			front1++
		}
	}
	if front1 == 0 {
		t.Fatal("no rank-1 individuals after selection")
	}
}

func TestRankingAndRepairStrings(t *testing.T) {
	if DebFronts.String() != "deb-fronts" || DominanceCount.String() != "dominance-count" {
		t.Fatal("Ranking strings wrong")
	}
	if RerankRepair.String() != "rerank" || ShuffleRepair.String() != "shuffle" {
		t.Fatal("Repair strings wrong")
	}
	if Ranking(9).String() == "" || Repair(9).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}

func BenchmarkStep250Pop100(b *testing.B) {
	eng := newEngine(b, 250, Config{PopulationSize: 100}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkStepSerial250Pop100(b *testing.B) {
	eng := newEngine(b, 250, Config{PopulationSize: 100, Workers: 1}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func TestTournamentSelectionRuns(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 16, Selection: TournamentSelection}, 20)
	eng.Run(10)
	if len(eng.FrontPoints()) == 0 {
		t.Fatal("empty front under tournament selection")
	}
	for i, ind := range eng.pop {
		if err := eng.eval.Validate(ind.Alloc); err != nil {
			t.Fatalf("individual %d invalid: %v", i, err)
		}
	}
}

func TestUnknownSelectionRejected(t *testing.T) {
	e := newEval(t, 10)
	if _, err := New(e, Config{PopulationSize: 4, Selection: Selection(9)}, rng.New(1)); err == nil {
		t.Fatal("unknown selection accepted")
	}
}

func TestSelectionString(t *testing.T) {
	if UniformSelection.String() != "uniform" || TournamentSelection.String() != "tournament" {
		t.Fatal("Selection strings wrong")
	}
	if Selection(9).String() == "" {
		t.Fatal("unknown selection empty")
	}
}

func TestTournamentConvergesAtLeastAsFast(t *testing.T) {
	// Tournament selection focuses reproduction on good individuals; on
	// this instance its hypervolume after a fixed budget should not be
	// drastically worse than uniform selection's.
	run := func(sel Selection) float64 {
		eng := newEngine(t, 60, Config{PopulationSize: 20, Selection: sel}, 21)
		eng.Run(40)
		sp := moea.UtilityEnergySpace()
		return sp.Hypervolume2D(eng.FrontPoints(), []float64{0, 1e12})
	}
	u := run(UniformSelection)
	tn := run(TournamentSelection)
	if tn < 0.7*u {
		t.Fatalf("tournament hypervolume %v collapsed vs uniform %v", tn, u)
	}
}

func TestMakespanEnergyProblem(t *testing.T) {
	eng := newEngine(t, 60, Config{PopulationSize: 16, Problem: MakespanEnergyProblem()}, 22)
	initialBest := math.Inf(1)
	for _, ind := range eng.pop {
		initialBest = math.Min(initialBest, ind.Objectives[0])
	}
	eng.Run(30)
	front := eng.FrontPoints()
	if len(front) == 0 {
		t.Fatal("empty makespan-energy front")
	}
	// Front sorted ascending (minimize first objective).
	for i := 1; i < len(front); i++ {
		if front[i][0] < front[i-1][0] {
			t.Fatal("makespan-energy front not sorted ascending")
		}
	}
	// Elitism under minimization: best makespan never worse than start.
	best := math.Inf(1)
	for _, p := range front {
		best = math.Min(best, p[0])
	}
	if best > initialBest+1e-9 {
		t.Fatalf("best makespan regressed: %v -> %v", initialBest, best)
	}
	// Mutual nondominance under the min/min space.
	sp := moea.NewSpace(moea.Minimize, moea.Minimize)
	for i := range front {
		for j := range front {
			if i != j && sp.Dominates(front[i], front[j]) {
				t.Fatal("makespan-energy front contains dominated point")
			}
		}
	}
}

func TestInvalidProblemRejected(t *testing.T) {
	e := newEval(t, 10)
	if _, err := New(e, Config{PopulationSize: 4, Problem: &Problem{Name: "broken"}}, rng.New(1)); err == nil {
		t.Fatal("problem without objectives accepted")
	}
}

func TestMakespanAndUtilityProblemsDiffer(t *testing.T) {
	// The two formulations pull toward different allocations: compare
	// best utility of the makespan engine vs the utility engine.
	utilEng := newEngine(t, 80, Config{PopulationSize: 20}, 23)
	makeEng := newEngine(t, 80, Config{PopulationSize: 20, Problem: MakespanEnergyProblem()}, 23)
	utilEng.Run(40)
	makeEng.Run(40)
	// Re-evaluate the makespan engine's front under the utility problem.
	sess := makeEng.eval.NewSession()
	bestMakeU := math.Inf(-1)
	for _, ind := range makeEng.ParetoFront() {
		ev := sess.Evaluate(ind.Alloc)
		bestMakeU = math.Max(bestMakeU, ev.Utility)
	}
	bestUtilU := math.Inf(-1)
	for _, p := range utilEng.FrontPoints() {
		bestUtilU = math.Max(bestUtilU, p[0])
	}
	if !(bestUtilU >= bestMakeU*0.9) {
		t.Fatalf("utility-problem engine (%v) should be competitive with makespan engine (%v) on utility",
			bestUtilU, bestMakeU)
	}
}
