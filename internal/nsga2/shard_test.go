package nsga2

import (
	"sync"
	"testing"

	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

// shardRing builds one IslandShard per [cuts[w], cuts[w+1]) range from
// an independent rng.New(seed) source each — validating that every
// shard re-derives its islands' streams by consuming all ring splits —
// and runs them concurrently with channel boundary mailboxes, exactly
// the topology internal/dist carries over sockets.
func shardRing(t *testing.T, e *sched.Evaluator, cfg IslandConfig, seed uint64, cuts []int) []*IslandShard {
	t.Helper()
	w := len(cuts) - 1
	shards := make([]*IslandShard, w)
	for i := 0; i < w; i++ {
		s, err := NewIslandShard(e, cfg, rng.New(seed), cuts[i], cuts[i+1])
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	return shards
}

// runShards drives every shard for the given generations over shared
// boundary edges and returns the per-shard tick records.
func runShards(t *testing.T, shards []*IslandShard, generations int) [][][]ShardTick {
	t.Helper()
	w := len(shards)
	recs := make([][][]ShardTick, w)
	if w == 1 {
		r, err := shards[0].Run(generations, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs[0] = r
		return recs
	}
	abort := newRingAbort()
	// bnd[i] is the edge from shard i into shard (i+1)%w.
	bnd := make([]Mailbox, w)
	for i := range bnd {
		bnd[i] = newChanMailbox(abort)
	}
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int, sh *IslandShard) {
			defer wg.Done()
			recs[i], errs[i] = sh.Run(generations, bnd[(i+w-1)%w], bnd[i])
		}(i, shards[i])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return recs
}

// TestIslandShardPartitionsMatchIslands: every contiguous shard
// partition of the ring — including the trivial whole-ring shard — must
// end bit-identical to the single-process async island run: per-island
// fronts, merged front, and per-tick migrant counts.
func TestIslandShardPartitionsMatchIslands(t *testing.T) {
	e := newEval(t, 40)
	for _, tc := range []struct {
		k    int
		cuts []int
	}{
		{3, []int{0, 3}},
		{4, []int{0, 2, 4}},
		{4, []int{0, 1, 2, 3, 4}},
		{5, []int{0, 2, 3, 5}},
	} {
		cfg := asyncCfg(tc.k, 4, 2, 8, 2)
		ref, err := NewIslands(e, cfg, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		rec := &recorder{}
		ref.SetObserver(rec)
		ref.Run(13) // ticks at 4, 8, 12 plus an off-tick tail

		shards := shardRing(t, e, cfg, 77, tc.cuts)
		recs := runShards(t, shards, 13)

		for w, s := range shards {
			if s.Generation() != ref.Generation() {
				t.Fatalf("k=%d cuts=%v: shard %d at generation %d, want %d",
					tc.k, tc.cuts, w, s.Generation(), ref.Generation())
			}
			for li, front := range s.Fronts() {
				gi := s.Lo() + li
				var pts [][]float64
				for _, ind := range front {
					pts = append(pts, ind.Objectives)
				}
				if !frontsEqual(pts, ref.engines[gi].FrontPoints()) {
					t.Fatalf("k=%d cuts=%v: island %d front differs from in-process run", tc.k, tc.cuts, gi)
				}
				// Per-tick migrant counts must match the reference
				// telemetry for the same global island.
				for ti, tick := range recs[w][li] {
					want := rec.migrations[ti*tc.k+gi]
					if tick.Migrants != want.Count || want.From != gi {
						t.Fatalf("k=%d cuts=%v: island %d tick %d migrants %d, want %d",
							tc.k, tc.cuts, gi, ti, tick.Migrants, want.Count)
					}
				}
			}
		}

		// The merged front across shards must equal the island model's.
		var union []Individual
		for _, s := range shards {
			for _, front := range s.Fronts() {
				union = append(union, front...)
			}
		}
		merged := MergeFronts(shards[0].space, union)
		var pts [][]float64
		for _, ind := range merged {
			pts = append(pts, ind.Objectives)
		}
		if !frontsEqual(pts, ref.FrontPoints()) {
			t.Fatalf("k=%d cuts=%v: merged shard front differs", tc.k, tc.cuts)
		}
	}
}

// TestIslandShardSnapshotHandoff: a run started as sharded processes
// can be resumed as a single-process island run and vice versa, bit
// for bit.
func TestIslandShardSnapshotHandoff(t *testing.T) {
	e := newEval(t, 40)
	cfg := asyncCfg(4, 5, 2, 8, 1)
	const total, pause = 18, 7

	straight, err := NewIslands(e, cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	straight.Run(total)

	// Sharded start, in-process finish.
	shards := shardRing(t, e, cfg, 31, []int{0, 2, 4})
	runShards(t, shards, pause)
	snap := &IslandsSnapshot{Generation: shards[0].Generation()}
	for _, s := range shards {
		snap.Islands = append(snap.Islands, s.Snapshots()...)
	}
	resumed, err := NewIslands(e, cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	resumed.Run(total - pause)
	requireIslandsIdentical(t, straight, resumed, "sharded start, in-process finish")

	// In-process start, sharded finish.
	head, err := NewIslands(e, cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	head.Run(pause)
	snap2 := head.Snapshot()
	tail := shardRing(t, e, cfg, 99, []int{0, 2, 4})
	for _, s := range tail {
		if err := s.Restore(snap2.Generation, snap2.Islands[s.Lo():s.Hi()]); err != nil {
			t.Fatal(err)
		}
		if s.Generation() != pause {
			t.Fatalf("restored shard at generation %d, want %d", s.Generation(), pause)
		}
	}
	runShards(t, tail, total-pause)
	gi := 0
	for _, s := range tail {
		for _, front := range s.Fronts() {
			var pts [][]float64
			for _, ind := range front {
				pts = append(pts, ind.Objectives)
			}
			if !frontsEqual(pts, straight.engines[gi].FrontPoints()) {
				t.Fatalf("island %d front differs after in-process start, sharded finish", gi)
			}
			gi++
		}
	}
}

// TestIslandShardValidation: bad ranges, missing boundary mailboxes,
// and shape-mismatched restores are rejected.
func TestIslandShardValidation(t *testing.T) {
	e := newEval(t, 20)
	cfg := asyncCfg(3, 5, 1, 6, 1)
	if _, err := NewIslandShard(e, cfg, rng.New(1), 2, 2); err == nil {
		t.Fatal("accepted an empty shard range")
	}
	if _, err := NewIslandShard(e, cfg, rng.New(1), 1, 4); err == nil {
		t.Fatal("accepted a shard range past the ring")
	}
	if _, err := NewIslandShard(e, cfg, nil, 0, 1); err == nil {
		t.Fatal("accepted a nil source")
	}
	s, err := NewIslandShard(e, cfg, rng.New(1), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(5, nil, nil); err == nil {
		t.Fatal("partial shard ran without boundary mailboxes")
	}
	if err := s.Restore(3, nil); err == nil {
		t.Fatal("restore accepted a snapshot count mismatch")
	}
	if err := s.Restore(3, []*Snapshot{nil, nil}); err == nil {
		t.Fatal("restore accepted nil island snapshots")
	}
}
