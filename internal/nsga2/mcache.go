package nsga2

import "tradeoff/internal/sched"

// Machine-bucket memoization (see DESIGN.md §12): the second cache
// level beneath the whole-chromosome fitness cache. Where the
// chromosome cache hits only on exact genotype clones, this level keys
// on a single machine's bucket fingerprint — the hash of its task
// sequence in execution order that Prepare computes anyway — and caches
// that machine's contribution row. Crossover children are almost never
// whole-chromosome clones, but they constantly reproduce individual
// machine schedules already simulated in another lineage or an earlier
// generation; a hit hands such a machine its row for the cost of a
// 40-byte copy instead of a queue simulation.
//
// The determinism contract matches the chromosome cache: probed,
// touched, and filled only from the engine's serial phases in offspring
// then Need order, clock-free generation-stamped eviction with a fixed
// probe window, and — because a cached row is bit-identical to what
// re-simulating the same bucket would produce — populations are
// bit-identical for ANY capacity, including disabled (absent a 64-bit
// fingerprint collision, which MachineCacheVerify exists to rule out).

// machineSlot is one cache entry: a bucket fingerprint, its stamped
// generation (-1 = empty), and the machine's contribution row by value
// — no owned buffers, so the table is a single flat allocation.
type machineSlot struct {
	fp  uint64
	gen int64
	row sched.MachineRow
}

// machineCache is the memoization table: power-of-two open addressing
// with a short probe window, like fitCache.
type machineCache struct {
	slots  []machineSlot
	mask   uint64
	window int
	live   int
	stats  cacheStats
}

// machineCacheWindow bounds the linear probe per fingerprint.
const machineCacheWindow = 8

// newMachineCache returns a cache with capacity rounded up to a power
// of two. Capacity must be >= 1 (the engine maps "disabled" to a nil
// cache).
func newMachineCache(capacity int) *machineCache {
	size := 1
	for size < capacity {
		size <<= 1
	}
	c := &machineCache{
		slots:  make([]machineSlot, size),
		mask:   uint64(size - 1),
		window: machineCacheWindow,
	}
	if c.window > size {
		c.window = size
	}
	for i := range c.slots {
		c.slots[i].gen = -1
	}
	return c
}

// lookup returns the slot index holding fp, or -1. Serial phases only.
//
//detlint:hotpath
func (c *machineCache) lookup(fp uint64) int {
	for o := 0; o < c.window; o++ {
		i := (fp + uint64(o)) & c.mask
		s := &c.slots[i]
		if s.gen >= 0 && s.fp == fp {
			return int(i)
		}
	}
	return -1
}

// touch refreshes the slot's generation stamp so hot buckets outlive
// cold ones under the oldest-stamp eviction rule.
func (c *machineCache) touch(slot int, gen int64) { c.slots[slot].gen = gen }

// insert stores (fp → row) stamped with gen. If the probe window is
// full, the oldest-stamped slot in the window is evicted; ties break
// toward the earliest probe position, so the replacement choice is
// deterministic. Serial phases only.
//
//detlint:hotpath
func (c *machineCache) insert(fp uint64, gen int64, row sched.MachineRow) {
	empty, oldest := -1, -1
	var oldestGen int64
	for o := 0; o < c.window; o++ {
		i := int((fp + uint64(o)) & c.mask)
		s := &c.slots[i]
		if s.gen < 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if s.fp == fp {
			// The same bucket simulated twice in one generation (two
			// offspring both missed before either inserted): refresh in
			// place.
			s.gen = gen
			s.row = row
			return
		}
		if oldest < 0 || s.gen < oldestGen {
			oldest, oldestGen = i, s.gen
		}
	}
	dst := empty
	if dst < 0 {
		dst = oldest
		c.stats.evicts++
	} else {
		c.live++
	}
	s := &c.slots[dst]
	s.fp = fp
	s.gen = gen
	s.row = row
}
