package nsga2

import (
	"testing"

	"tradeoff/internal/heuristics"
	"tradeoff/internal/moea"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

func newIslands(t testing.TB, tasks int, cfg IslandConfig, seed uint64) *Islands {
	t.Helper()
	is, err := NewIslands(newEval(t, tasks), cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func TestIslandsConfigValidation(t *testing.T) {
	e := newEval(t, 10)
	bad := []IslandConfig{
		{Islands: -1, Engine: Config{PopulationSize: 4}},
		{MigrationInterval: -5, Engine: Config{PopulationSize: 4}},
		{Migrants: -1, Engine: Config{PopulationSize: 4}},
	}
	for i, cfg := range bad {
		if _, err := NewIslands(e, cfg, rng.New(1)); err == nil {
			t.Errorf("bad island config %d accepted", i)
		}
	}
	if _, err := NewIslands(e, IslandConfig{Engine: Config{PopulationSize: 4}}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewIslands(e, IslandConfig{Engine: Config{PopulationSize: 3}}, rng.New(1)); err == nil {
		t.Error("odd per-island population accepted")
	}
}

func TestIslandsRunAndMergeFront(t *testing.T) {
	is := newIslands(t, 60, IslandConfig{
		Islands:           3,
		MigrationInterval: 5,
		Migrants:          2,
		Engine:            Config{PopulationSize: 10},
	}, 2)
	is.Run(20)
	if is.Generation() != 20 {
		t.Fatalf("Generation = %d", is.Generation())
	}
	front := is.FrontPoints()
	if len(front) == 0 {
		t.Fatal("empty merged front")
	}
	sp := moea.UtilityEnergySpace()
	for i := range front {
		for j := range front {
			if i != j && sp.Dominates(front[i], front[j]) {
				t.Fatal("merged front contains dominated point")
			}
		}
	}
	// Sorted by utility descending (Maximize first objective).
	for i := 1; i < len(front); i++ {
		if front[i][0] > front[i-1][0] {
			t.Fatal("merged front not sorted")
		}
	}
}

func TestIslandsDeterministic(t *testing.T) {
	run := func() [][]float64 {
		is := newIslands(t, 40, IslandConfig{
			Islands:           2,
			MigrationInterval: 4,
			Migrants:          1,
			Engine:            Config{PopulationSize: 8, Workers: 2},
		}, 3)
		is.Run(12)
		return is.FrontPoints()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("island run not deterministic")
		}
	}
}

func TestIslandsSeedsDistributed(t *testing.T) {
	e := newEval(t, 60)
	var seeds []*sched.Allocation
	for _, h := range heuristics.All {
		a, err := h.Build(e)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, a)
	}
	is, err := NewIslands(e, IslandConfig{
		Islands: 2,
		Engine:  Config{PopulationSize: 10, Seeds: seeds},
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// The merged front must reach the min-energy seed's energy at gen 0
	// (the seed lives on one island and elitism keeps it).
	minSeedE := e.Evaluate(heuristics.BuildMinEnergy(e)).Energy
	front := is.FrontPoints()
	best := front[0][1]
	for _, p := range front {
		if p[1] < best {
			best = p[1]
		}
	}
	if best > minSeedE+1e-9 {
		t.Fatalf("merged front min energy %v above seed energy %v", best, minSeedE)
	}
}

func TestMigrationSpreadsElites(t *testing.T) {
	// Give island 0 the min-energy seed; after migrations, some other
	// island must hold a solution at (or below) an energy the random
	// islands could not plausibly find alone this fast.
	e := newEval(t, 80)
	seed := heuristics.BuildMinEnergy(e)
	seedE := e.Evaluate(seed).Energy
	is, err := NewIslands(e, IslandConfig{
		Islands:           3,
		MigrationInterval: 2,
		Migrants:          2,
		Engine:            Config{PopulationSize: 10, Seeds: []*sched.Allocation{seed}},
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	is.Run(10) // 5 migrations: elite reaches every ring position
	spread := 0
	for _, eng := range is.engines {
		for _, ind := range eng.Population() {
			if ind.Objectives[1] <= seedE*1.001 {
				spread++
				break
			}
		}
	}
	if spread < 2 {
		t.Fatalf("elite spread to %d islands, want >= 2", spread)
	}
}

func TestElitesOrdering(t *testing.T) {
	eng := newEngine(t, 40, Config{PopulationSize: 12}, 6)
	eng.Run(5)
	elites := eng.Elites(5)
	if len(elites) != 5 {
		t.Fatalf("%d elites", len(elites))
	}
	for i := 1; i < len(elites); i++ {
		if elites[i].Rank < elites[i-1].Rank {
			t.Fatal("elites not rank-ordered")
		}
	}
	// Asking for more than the population clamps.
	if got := eng.Elites(1000); len(got) != 12 {
		t.Fatalf("oversized elites request returned %d", len(got))
	}
}

func TestInjectReplacesWorst(t *testing.T) {
	e := newEval(t, 50)
	engA, err := New(e, Config{PopulationSize: 10}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	engB, err := New(e, Config{PopulationSize: 10, Seeds: []*sched.Allocation{heuristics.BuildMinEnergy(e)}}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	elite := engB.Elites(1)
	seedE := elite[0].Objectives[1]
	if err := engA.Inject(elite); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ind := range engA.Population() {
		if ind.Objectives[1] <= seedE+1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatal("injected elite not present")
	}
	// Injecting an invalid individual errors.
	bad := Individual{Alloc: sched.NewAllocation(3)}
	if err := engA.Inject([]Individual{bad}); err == nil {
		t.Fatal("invalid injection accepted")
	}
	// Empty injection is a no-op.
	if err := engA.Inject(nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIslandsStep4x50(b *testing.B) {
	is := newIslands(b, 250, IslandConfig{
		Islands: 4,
		Engine:  Config{PopulationSize: 50, Workers: 1},
	}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is.Step()
	}
}

func TestSnapshotResumeBitIdentical(t *testing.T) {
	// Uninterrupted run vs snapshot-at-15-and-resume: identical fronts.
	cfg := Config{PopulationSize: 12, Workers: 1}
	full := newEngine(t, 40, cfg, 31)
	full.Run(30)
	want := full.FrontPoints()

	half := newEngine(t, 40, cfg, 31)
	half.Run(15)
	raw, err := EncodeSnapshot(half.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newEngine(t, 40, cfg, 999) // different seed; Restore overwrites
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 15 {
		t.Fatalf("resumed at generation %d", resumed.Generation())
	}
	resumed.Run(15)
	got := resumed.FrontPoints()
	if len(got) != len(want) {
		t.Fatalf("front sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("resumed run diverged at front point %d", i)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	eng := newEngine(t, 20, Config{PopulationSize: 8}, 32)
	snap := eng.Snapshot()
	snap.Population = snap.Population[:4]
	if err := eng.Restore(snap); err == nil {
		t.Fatal("short snapshot accepted")
	}
	snap2 := eng.Snapshot()
	snap2.Population[0].Machine[0] = 999
	if err := eng.Restore(snap2); err == nil {
		t.Fatal("invalid genome accepted")
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("{bad")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeSnapshot([]byte(`{"generation":1,"population":[]}`)); err == nil {
		t.Fatal("empty population accepted")
	}
}

// TestIslandsMigrationEvents checks that an attached observer sees one
// migration event per ring edge at every migration interval, and that
// observing does not perturb the run.
func TestIslandsMigrationEvents(t *testing.T) {
	e := newEval(t, 40)
	cfg := IslandConfig{
		Islands:           3,
		MigrationInterval: 4,
		Migrants:          2,
		Engine:            Config{PopulationSize: 8},
	}
	newIs := func() *Islands {
		is, err := NewIslands(e, cfg, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return is
	}
	plain := newIs()
	plain.Run(12)

	observed := newIs()
	rec := &recorder{}
	observed.SetObserver(rec)
	observed.Run(12)

	// Migrations fire at generations 4, 8, and 12; each moves migrants
	// along every ring edge.
	if want := 3 * cfg.Islands; len(rec.migrations) != want {
		t.Fatalf("%d migration events, want %d", len(rec.migrations), want)
	}
	seen := map[int]int{}
	for _, m := range rec.migrations {
		if m.Generation%cfg.MigrationInterval != 0 || m.Generation == 0 {
			t.Fatalf("migration at generation %d, want multiples of %d", m.Generation, cfg.MigrationInterval)
		}
		if m.To != (m.From+1)%cfg.Islands {
			t.Fatalf("migration %d -> %d is not a ring edge", m.From, m.To)
		}
		if m.Count != cfg.Migrants {
			t.Fatalf("migration carried %d individuals, want %d", m.Count, cfg.Migrants)
		}
		seen[m.Generation]++
	}
	for gen, n := range seen {
		if n != cfg.Islands {
			t.Fatalf("generation %d saw %d migration events, want %d", gen, n, cfg.Islands)
		}
	}

	// Bit-identical merged fronts with and without the observer.
	pf, of := plain.FrontPoints(), observed.FrontPoints()
	if len(pf) != len(of) {
		t.Fatalf("front sizes differ with observer: %d vs %d", len(pf), len(of))
	}
	for i := range pf {
		if pf[i][0] != of[i][0] || pf[i][1] != of[i][1] {
			t.Fatal("observer changed the island run")
		}
	}
}
