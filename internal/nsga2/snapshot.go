package nsga2

import (
	"encoding/json"
	"fmt"

	"tradeoff/internal/rng"
)

// Snapshot is a serializable capture of an engine mid-run: the
// generation count, the full population genotype, and the random-source
// state. Restoring a snapshot into an engine with the same evaluator and
// configuration continues the run bit-for-bit identically — the support
// long paper-scale runs (10^5-10^6 iterations) need to survive restarts.
type Snapshot struct {
	Generation int              `json:"generation"`
	RNG        rng.State        `json:"rng"`
	Population []GenomeSnapshot `json:"population"`
}

// GenomeSnapshot is one chromosome's genotype (objectives and ranks are
// recomputed on restore).
type GenomeSnapshot struct {
	Machine []int `json:"machine"`
	Order   []int `json:"order"`
}

// Snapshot captures the engine's current state.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{Generation: e.generation, RNG: e.src.State()}
	for _, ind := range e.pop {
		s.Population = append(s.Population, GenomeSnapshot{
			Machine: widen(ind.Alloc.Machine),
			Order:   widen(ind.Alloc.Order),
		})
	}
	return s
}

// Restore resets the engine to the snapshot's state. The snapshot's
// population size must match the engine's configuration; every genome is
// validated against the evaluator, then evaluated and ranked.
//
//detlint:pure
func (e *Engine) Restore(s *Snapshot) error {
	if len(s.Population) != e.cfg.PopulationSize {
		return fmt.Errorf("nsga2: snapshot population %d, engine expects %d",
			len(s.Population), e.cfg.PopulationSize)
	}
	// Build the restored population in arena slots; on a validation
	// error the drawn slots go back and the engine is untouched.
	pop := make([]Individual, len(s.Population))
	for i, g := range s.Population {
		alloc := e.arena.getAlloc()
		alloc.Machine = narrowInto(alloc.Machine[:0], g.Machine)
		alloc.Order = narrowInto(alloc.Order[:0], g.Order)
		if err := e.eval.Validate(alloc); err != nil {
			for k := 0; k <= i; k++ {
				e.arena.putAlloc(pop[k].Alloc)
			}
			e.arena.putAlloc(alloc)
			return fmt.Errorf("nsga2: snapshot genome %d invalid: %w", i, err)
		}
		pop[i] = Individual{Alloc: alloc}
	}
	e.evaluateAll(pop)
	e.rank(pop)
	// Recycle the replaced population's buffers before swapping in the
	// restored one.
	for i := range e.pop {
		e.arena.putAlloc(e.pop[i].Alloc)
		e.arena.putObjs(e.pop[i].Objectives)
		e.arena.putContrib(e.pop[i].contrib)
	}
	e.pop = pop
	e.generation = s.Generation
	e.src = rng.FromState(s.RNG)
	// Re-evaluating the restored population is bookkeeping, not search
	// progress: resync the telemetry baseline so an attached observer's
	// first post-restore generation reports only its own evaluations.
	e.statsBase = e.sessionStats()
	return nil
}

// IslandsSnapshot captures an island-model run mid-schedule: the shared
// logical generation counter plus one engine snapshot per island. It is
// taken and restored at Run/Step boundaries, where every ring-edge
// mailbox is provably drained (each migration tick's send is consumed
// by the receiver at its own same-numbered tick before either island
// can pass the tick), so no in-flight migrants need to be serialized —
// resuming an asynchronous run from a snapshot is bit-identical to
// never having paused, at any logical-clock point.
type IslandsSnapshot struct {
	Generation int         `json:"generation"`
	Islands    []*Snapshot `json:"islands"`
}

// Snapshot captures the island run's current state.
func (is *Islands) Snapshot() *IslandsSnapshot {
	s := &IslandsSnapshot{Generation: is.generation}
	for _, eng := range is.engines {
		s.Islands = append(s.Islands, eng.Snapshot())
	}
	return s
}

// Restore resets the island run to the snapshot's state. The island
// count must match the configuration; each engine validates its own
// sub-snapshot. On error the run is left untouched for islands before
// the failing one only in rng/population terms — callers should treat
// a failed restore as fatal for the run, as with Engine.Restore.
func (is *Islands) Restore(s *IslandsSnapshot) error {
	if len(s.Islands) != len(is.engines) {
		return fmt.Errorf("nsga2: snapshot has %d islands, run expects %d",
			len(s.Islands), len(is.engines))
	}
	for i, sub := range s.Islands {
		if sub == nil {
			return fmt.Errorf("nsga2: island snapshot %d is nil", i)
		}
		if err := is.engines[i].Restore(sub); err != nil {
			return fmt.Errorf("nsga2: island %d: %w", i, err)
		}
	}
	is.generation = s.Generation
	if is.observer != nil {
		// Restore re-evaluates every population; resync the aggregated
		// shard baseline so the next tick reports only its own work.
		is.aggBase = is.sumShards()
	}
	return nil
}

// EncodeIslandsSnapshot renders an island snapshot as JSON.
func EncodeIslandsSnapshot(s *IslandsSnapshot) ([]byte, error) {
	return json.Marshal(s)
}

// DecodeIslandsSnapshot parses an island snapshot from JSON.
func DecodeIslandsSnapshot(raw []byte) (*IslandsSnapshot, error) {
	var s IslandsSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("nsga2: decoding islands snapshot: %w", err)
	}
	if len(s.Islands) == 0 {
		return nil, fmt.Errorf("nsga2: islands snapshot has no islands")
	}
	return &s, nil
}

// MarshalJSON implements json.Marshaler (plain struct encoding; declared
// for symmetry and future format versioning).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal((*alias)(s))
}

// DecodeSnapshot parses a snapshot from JSON.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("nsga2: decoding snapshot: %w", err)
	}
	if len(s.Population) == 0 {
		return nil, fmt.Errorf("nsga2: snapshot has no population")
	}
	return &s, nil
}

// EncodeSnapshot renders a snapshot as JSON.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// widen copies int32 genes into the []int form the JSON snapshot schema
// has used since v1, keeping saved snapshots readable across the
// genotype's narrowing to int32.
func widen(src []int32) []int {
	out := make([]int, len(src))
	for i, v := range src {
		out[i] = int(v)
	}
	return out
}

// narrowInto appends src to dst narrowed to int32. Gene values are
// machine indices and order ranks, both far below 2^31; Validate rejects
// out-of-range values after the restore regardless.
func narrowInto(dst []int32, src []int) []int32 {
	for _, v := range src {
		dst = append(dst, int32(v))
	}
	return dst
}
