package nsga2

import (
	"testing"

	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
)

func allocOf(machine []int32, order []int32) *sched.Allocation {
	return &sched.Allocation{Machine: machine, Order: order}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := allocOf([]int32{0, 1, 2, 1, 0}, []int32{4, 2, 0, 1, 3})
	if fingerprint(a) != fingerprint(a) {
		t.Fatal("fingerprint of the same allocation differs between calls")
	}
	b := allocOf(append([]int32(nil), a.Machine...), append([]int32(nil), a.Order...))
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("fingerprint differs between equal allocations in distinct storage")
	}
}

// TestFingerprintSensitivity flips one gene at a time — machine or order,
// at every position including the lane boundaries around multiples of 4 —
// and requires the fingerprint to change.
func TestFingerprintSensitivity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		machine := make([]int32, n)
		order := make([]int32, n)
		for i := range machine {
			machine[i] = int32(i % 3)
			order[i] = int32(i)
		}
		base := fingerprint(allocOf(machine, order))
		for i := 0; i < n; i++ {
			m2 := append([]int32(nil), machine...)
			m2[i] += 7
			if fingerprint(allocOf(m2, order)) == base {
				t.Fatalf("n=%d: machine flip at %d not reflected in fingerprint", n, i)
			}
			o2 := append([]int32(nil), order...)
			o2[i] += 100
			if fingerprint(allocOf(machine, o2)) == base {
				t.Fatalf("n=%d: order flip at %d not reflected in fingerprint", n, i)
			}
		}
	}
}

// TestFingerprintLengthAndSwap pins two classic weak-hash failure modes:
// prefix-extension (a shorter chromosome must not collide with a padded
// one) and transposition (swapping two genes must change the hash).
func TestFingerprintLengthAndSwap(t *testing.T) {
	short := allocOf([]int32{1, 1, 1}, []int32{0, 1, 2})
	long := allocOf([]int32{1, 1, 1, 0}, []int32{0, 1, 2, 3})
	if fingerprint(short) == fingerprint(long) {
		t.Fatal("length not absorbed: prefix chromosomes collide")
	}
	a := allocOf([]int32{0, 1, 2, 3, 4, 5, 6, 7}, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	b := allocOf([]int32{1, 0, 2, 3, 4, 5, 6, 7}, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("adjacent transposition collides")
	}
	// Cross-lane swap: positions 0 and 4 land in the same lane under the
	// 4-stride absorption, 0 and 5 in different lanes; both must differ.
	c := allocOf([]int32{4, 1, 2, 3, 0, 5, 6, 7}, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	d := allocOf([]int32{5, 1, 2, 3, 4, 0, 6, 7}, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	if fingerprint(a) == fingerprint(c) || fingerprint(a) == fingerprint(d) {
		t.Fatal("gene swap across lanes collides")
	}
}

// TestFingerprintNoCollisionsAcrossRandomPool hashes a pool of random
// chromosomes and requires all distinct genotypes to get distinct
// fingerprints — at this pool size a 64-bit hash colliding at all would
// point at a mixing bug, not bad luck (expected collisions ~3e-12).
func TestFingerprintNoCollisionsAcrossRandomPool(t *testing.T) {
	eval := newEval(t, 40)
	src := rng.New(7)
	seen := make(map[uint64][]int32, 2000)
	for k := 0; k < 2000; k++ {
		a := eval.RandomAllocation(src)
		fp := fingerprint(a)
		if prev, ok := seen[fp]; ok {
			same := len(prev) == 2*len(a.Machine)
			if same {
				for i := range a.Machine {
					if prev[i] != a.Machine[i] || prev[len(a.Machine)+i] != a.Order[i] {
						same = false
						break
					}
				}
			}
			if !same {
				t.Fatalf("fingerprint collision between distinct genotypes after %d draws", k)
			}
			continue
		}
		flat := make([]int32, 0, 2*len(a.Machine))
		flat = append(flat, a.Machine...)
		flat = append(flat, a.Order...)
		seen[fp] = flat
	}
}

func TestFitCacheCapacityRounding(t *testing.T) {
	ar := &arena{}
	ar.init(newEval(t, 20), 2, 8)
	for _, tc := range []struct{ capacity, slots, window int }{
		{1, 1, 1},
		{2, 2, 2},
		{3, 4, 4},
		{8, 8, 8},
		{9, 16, 8},
		{400, 512, 8},
	} {
		c := newFitCache(tc.capacity, ar)
		if len(c.slots) != tc.slots || c.window != tc.window {
			t.Fatalf("capacity %d: %d slots window %d, want %d slots window %d",
				tc.capacity, len(c.slots), c.window, tc.slots, tc.window)
		}
		if c.mask != uint64(tc.slots-1) {
			t.Fatalf("capacity %d: mask %#x", tc.capacity, c.mask)
		}
	}
}

func TestFitCacheInsertLookupEvict(t *testing.T) {
	eval := newEval(t, 20)
	ar := &arena{}
	ar.init(eval, 2, 8)
	c := newFitCache(2, ar) // 2 slots, window 2: every insert probes both
	ev1 := sched.Evaluation{Utility: 1, Energy: 10}
	ev2 := sched.Evaluation{Utility: 2, Energy: 20}
	contrib := eval.NewContribs()

	c.insert(100, 1, ev1, contrib)
	if s := c.lookup(100); s < 0 || c.slots[s].ev != ev1 {
		t.Fatal("inserted entry not found")
	}
	if c.lookup(101) >= 0 {
		t.Fatal("phantom hit for a fingerprint never inserted")
	}
	// Same fingerprint again refreshes in place instead of duplicating.
	c.insert(100, 2, ev2, contrib)
	if c.live != 1 {
		t.Fatalf("duplicate insert grew live to %d", c.live)
	}
	if s := c.lookup(100); c.slots[s].ev != ev2 || c.slots[s].gen != 2 {
		t.Fatal("duplicate insert did not refresh payload and stamp")
	}

	// Fill the second slot, then insert a third fingerprint: the oldest
	// stamp in the probe window must be evicted, deterministically.
	c.insert(200, 3, ev1, contrib)
	if c.live != 2 {
		t.Fatalf("live %d after two distinct inserts", c.live)
	}
	c.insert(300, 4, ev2, contrib)
	if c.live != 2 {
		t.Fatalf("live %d after eviction insert", c.live)
	}
	if c.stats.evicts != 1 {
		t.Fatalf("evicts %d, want 1", c.stats.evicts)
	}
	if c.lookup(100) >= 0 {
		t.Fatal("oldest-stamped entry (gen 2) survived eviction")
	}
	if c.lookup(200) < 0 || c.lookup(300) < 0 {
		t.Fatal("newer entries evicted instead of the oldest")
	}
}

// TestFitCacheTouchKeepsEntryAlive pins the generation-stamp recency
// rule: a hit re-stamps the entry, so a recently-hit old entry outlives
// a never-hit newer one under eviction pressure.
func TestFitCacheTouchKeepsEntryAlive(t *testing.T) {
	eval := newEval(t, 20)
	ar := &arena{}
	ar.init(eval, 2, 8)
	c := newFitCache(2, ar)
	contrib := eval.NewContribs()
	ev := sched.Evaluation{Utility: 1, Energy: 1}

	c.insert(100, 1, ev, contrib)
	c.insert(200, 2, ev, contrib)
	c.touch(c.lookup(100), 9) // old entry hit at generation 9
	c.insert(300, 10, ev, contrib)
	if c.lookup(100) < 0 {
		t.Fatal("re-stamped entry evicted despite recent hit")
	}
	if c.lookup(200) >= 0 {
		t.Fatal("stale entry survived over the re-stamped one")
	}
}

func TestCacheStatsDiff(t *testing.T) {
	cum := cacheStats{hits: 10, misses: 20, evicts: 3}
	base := cacheStats{hits: 4, misses: 15, evicts: 1}
	cum.sub(base)
	if cum != (cacheStats{hits: 6, misses: 5, evicts: 2}) {
		t.Fatalf("sub produced %+v", cum)
	}
}

// BenchmarkFingerprint4000 measures fingerprint throughput at the
// largest trace scale: the cost a cache lookup adds to every offspring
// before any simulation is saved, so it must stay a small fraction of
// EvaluateFull on the same trace (BENCH_step.json records ~115µs).
func BenchmarkFingerprint4000(b *testing.B) {
	const n = 4000
	machine := make([]int32, n)
	order := make([]int32, n)
	for i := range machine {
		machine[i] = int32(i % 8)
		order[i] = int32(i)
	}
	a := allocOf(machine, order)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = fingerprint(a)
	}
	_ = sink
}
