package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const plainOutput = `goos: linux
goarch: amd64
pkg: tradeoff
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepPop100-8      	     100	   1895817 ns/op	   23653 B/op	      23 allocs/op
BenchmarkStepPop200-8      	      50	   3722078 ns/op	   46814 B/op	      43 allocs/op
BenchmarkParetoFront-8     	   20000	     61234 ns/op	   12345 B/op	      51 allocs/op
BenchmarkNoMem-8           	    1000	    500000 ns/op
PASS
ok  	tradeoff	2.5s
`

func TestParsePlain(t *testing.T) {
	res, err := parse(strings.NewReader(plainOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(res), res)
	}
	first := res[0]
	if first.Name != "BenchmarkStepPop100" {
		t.Fatalf("name %q, want GOMAXPROCS suffix stripped", first.Name)
	}
	if first.NsPerOp != 1895817 || first.AllocsPerOp != 23 || !first.HasAllocs {
		t.Fatalf("unexpected measurement: %+v", first)
	}
	if res[3].HasAllocs {
		t.Fatalf("no-benchmem line must have HasAllocs=false: %+v", res[3])
	}
}

func TestParseTest2JSON(t *testing.T) {
	in := `{"Action":"start","Package":"tradeoff"}
{"Action":"output","Package":"tradeoff","Output":"BenchmarkStepPop100-8   100   1000 ns/op   64 B/op   2 allocs/op\n"}
{"Action":"output","Package":"tradeoff","Output":"PASS\n"}
{"Action":"pass","Package":"tradeoff"}
`
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "BenchmarkStepPop100" || res[0].NsPerOp != 1000 || res[0].AllocsPerOp != 2 {
		t.Fatalf("unexpected results: %+v", res)
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	res, err := parse(strings.NewReader(plainOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := record(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res) {
		t.Fatalf("round trip lost results: %d vs %d", len(back), len(res))
	}
	for i := range res {
		if back[i] != res[i] {
			t.Fatalf("result %d: %+v vs %+v", i, back[i], res[i])
		}
	}
}

func TestReduceDuplicates(t *testing.T) {
	in := "BenchmarkX-8 10 200 ns/op\nBenchmarkX-8 10 100 ns/op\nBenchmarkX-8 10 900 ns/op\n"
	raw, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3 {
		t.Fatalf("parse collapsed duplicates: %+v", raw)
	}
	mean := reduce(raw, statMean)
	if len(mean) != 1 || mean[0].NsPerOp != 400 {
		t.Fatalf("mean: unexpected results: %+v", mean)
	}
	if mean[0].Iterations != 30 {
		t.Fatalf("iterations not summed: %+v", mean)
	}
	med := reduce(raw, statMedian)
	if len(med) != 1 || med[0].NsPerOp != 200 {
		t.Fatalf("median: unexpected results: %+v", med)
	}
}

func TestStatMedian(t *testing.T) {
	if got := statMedian([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("odd median %v, want 5", got)
	}
	if got := statMedian([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median %v, want 2.5", got)
	}
}

// TestRunStatFlag pins -stat end to end: an outlier run regresses the
// mean beyond the threshold but leaves the median untouched, and an
// unknown statistic is a usage error.
func TestRunStatFlag(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.txt", "BenchmarkA-8 10 1000 ns/op\n")
	newPath := write("new.txt",
		"BenchmarkA-8 10 1000 ns/op\nBenchmarkA-8 10 1010 ns/op\nBenchmarkA-8 10 9000 ns/op\n")

	var out, errOut strings.Builder
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("mean compare exit %d, want 1 (outlier drags the mean); stderr: %s", code, errOut.String())
	}
	out.Reset()
	if code := run([]string{"-stat", "median", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("median compare exit %d, want 0; stderr: %s", code, errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-stat", "p99", oldPath, newPath}, &out, &errOut); code != 2 {
		t.Fatalf("unknown stat exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "p99") {
		t.Fatalf("usage error does not name the bad statistic: %s", errOut.String())
	}
}

func TestCompareThreshold(t *testing.T) {
	oldRes := []Result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 100, HasAllocs: true},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 0, HasAllocs: true},
		{Name: "OnlyOld", NsPerOp: 5},
	}
	newRes := []Result{
		{Name: "A", NsPerOp: 1099, AllocsPerOp: 110, HasAllocs: true}, // within 10%
		{Name: "B", NsPerOp: 900, AllocsPerOp: 0, HasAllocs: true},
		{Name: "OnlyNew", NsPerOp: 5},
	}
	if regs := compare(oldRes, newRes, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// Beyond 10% on ns/op.
	newRes[0].NsPerOp = 1101
	regs := compare(oldRes, newRes, 0.10)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("want one ns/op regression, got %v", regs)
	}
	// Beyond 10% on allocs/op too.
	newRes[0].AllocsPerOp = 111
	if regs := compare(oldRes, newRes, 0.10); len(regs) != 2 {
		t.Fatalf("want two regressions, got %v", regs)
	}
	// Zero-alloc benchmarks must stay zero-alloc regardless of threshold.
	newRes[1].AllocsPerOp = 1
	regs = compare(oldRes, newRes, 0.10)
	found := false
	for _, r := range regs {
		if r.Name == "B" && r.Metric == "allocs/op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("0 -> 1 allocs/op not flagged: %v", regs)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(oldPath, []byte("BenchmarkA-8 10 1000 ns/op 8 B/op 1 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte("BenchmarkA-8 10 1050 ns/op 8 B/op 1 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for 5%% drift under 10%% threshold; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok: no regression") {
		t.Fatalf("missing ok line in output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-threshold", "0.01", oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d for 5%% drift over 1%% threshold", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL line in output:\n%s", out.String())
	}
	if code := run([]string{oldPath}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for bad usage, want 2", code)
	}
}

func TestRunRecord(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	outJSON := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(plainOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-record", outJSON, in}, &out, &errOut); code != 0 {
		t.Fatalf("record exit %d; stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"benchmarks\"") {
		t.Fatalf("canonical file missing benchmarks key:\n%s", data)
	}
}

// TestRunErrorExitCodes pins the distinct exit statuses for the three
// input-failure modes: missing file (3), malformed bench lines (4), and
// empty input (5), each with a message naming the cause.
func TestRunErrorExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte("BenchmarkA-8 10 1000 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	malformed := write("malformed.txt", "BenchmarkA-8 ten 1000 ns/op\nBenchmarkB\n")
	empty := write("empty.txt", "")
	noBench := write("nobench.txt", "PASS\nok  \ttradeoff\t0.1s\n")

	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string
	}{
		{"missing baseline", []string{filepath.Join(dir, "nope.txt"), good}, 3, "no such file"},
		{"missing candidate", []string{good, filepath.Join(dir, "nope.txt")}, 3, "no such file"},
		{"malformed baseline", []string{malformed, good}, 4, "none parsed"},
		{"empty baseline", []string{empty, good}, 5, "empty input"},
		{"empty candidate", []string{good, empty}, 5, "empty input"},
		{"no bench content", []string{noBench, good}, 5, "empty input"},
		{"record empty", []string{"-record", filepath.Join(dir, "out.json"), empty}, 5, "empty input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantMsg) {
				t.Fatalf("stderr %q does not mention %q", errOut.String(), tc.wantMsg)
			}
		})
	}
}

// TestRunBenchFilter pins the -bench regexp: comparison sees only the
// matching benchmarks (a regression outside the filter cannot fail the
// run), recording writes only the matching subset, an unmatched filter
// is an empty-input error (exit 5), and a bad regexp is a usage error.
func TestRunBenchFilter(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.txt",
		"BenchmarkTypedStep-8 10 1000 ns/op 8 B/op 1 allocs/op\nBenchmarkOther-8 10 1000 ns/op 8 B/op 1 allocs/op\n")
	newPath := write("new.txt",
		"BenchmarkTypedStep-8 10 1010 ns/op 8 B/op 1 allocs/op\nBenchmarkOther-8 10 9000 ns/op 8 B/op 1 allocs/op\n")

	var out, errOut strings.Builder
	if code := run([]string{newPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("sanity self-compare exit %d; stderr: %s", code, errOut.String())
	}
	out.Reset()
	if code := run([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatal("unfiltered compare must fail on BenchmarkOther's 9x regression")
	}
	out.Reset()
	if code := run([]string{"-bench", "Typed", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("filtered compare exit %d; stderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "BenchmarkOther") {
		t.Fatalf("filtered table still lists BenchmarkOther:\n%s", out.String())
	}

	outJSON := filepath.Join(dir, "typed.json")
	out.Reset()
	if code := run([]string{"-bench", "Typed", "-record", outJSON, oldPath}, &out, &errOut); code != 0 {
		t.Fatalf("filtered record exit %d; stderr: %s", code, errOut.String())
	}
	res, err := parseFile(outJSON, statMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "BenchmarkTypedStep" {
		t.Fatalf("filtered record kept %+v, want only BenchmarkTypedStep", res)
	}

	errOut.Reset()
	if code := run([]string{"-bench", "NoSuchBench", oldPath, newPath}, &out, &errOut); code != 5 {
		t.Fatalf("unmatched filter exit %d, want 5; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "NoSuchBench") {
		t.Fatalf("unmatched-filter error does not name the pattern: %s", errOut.String())
	}
	if code := run([]string{"-bench", "(", oldPath, newPath}, &out, &errOut); code != 2 {
		t.Fatal("invalid regexp must be a usage error (exit 2)")
	}
}

// TestRunJSON pins the -json compare mode: same exit-code contract as
// the table mode, with one parseable JSON document on stdout.
func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.txt", "BenchmarkA-8 10 1000 ns/op 8 B/op 1 allocs/op\nBenchmarkOnlyOld-8 10 5 ns/op\n")
	drift := write("drift.txt", "BenchmarkA-8 10 1050 ns/op 8 B/op 1 allocs/op\nBenchmarkOnlyNew-8 10 5 ns/op\n")
	regress := write("regress.txt", "BenchmarkA-8 10 2000 ns/op 8 B/op 9 allocs/op\n")
	malformed := write("malformed.txt", "BenchmarkA-8 ten 1000 ns/op\n")
	empty := write("empty.txt", "")

	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"ok", []string{"-json", good, drift}, 0},
		{"regression", []string{"-json", good, regress}, 1},
		{"tight threshold", []string{"-json", "-threshold", "0.01", good, drift}, 1},
		{"usage", []string{"-json", good}, 2},
		{"missing file", []string{"-json", filepath.Join(dir, "nope.txt"), good}, 3},
		{"malformed", []string{"-json", malformed, good}, 4},
		{"empty", []string{"-json", empty, good}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.wantCode, errOut.String())
			}
			if tc.wantCode > 1 {
				return // no document expected on usage/input errors
			}
			var doc DiffDoc
			if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
				t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
			}
			if doc.OK != (tc.wantCode == 0) {
				t.Fatalf("ok=%v with exit %d", doc.OK, code)
			}
			if doc.OK && len(doc.Regressions) != 0 {
				t.Fatalf("ok document lists regressions: %+v", doc.Regressions)
			}
			if !doc.OK && len(doc.Regressions) == 0 {
				t.Fatalf("failing document lists no regressions")
			}
		})
	}
}

// TestBuildDiff checks the per-benchmark rows: union of both sides,
// sorted, with deltas only where both sides measured.
func TestBuildDiff(t *testing.T) {
	oldRes := []Result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 10, HasAllocs: true},
		{Name: "OnlyOld", NsPerOp: 5},
	}
	newRes := []Result{
		{Name: "A", NsPerOp: 1100, AllocsPerOp: 10, HasAllocs: true},
		{Name: "OnlyNew", NsPerOp: 7},
	}
	doc := buildDiff(oldRes, newRes, nil, 0.10)
	if !doc.OK || doc.Threshold != 0.10 {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("want union of 3 benchmarks, got %+v", doc.Benchmarks)
	}
	if doc.Benchmarks[0].Name != "A" || doc.Benchmarks[1].Name != "OnlyNew" || doc.Benchmarks[2].Name != "OnlyOld" {
		t.Fatalf("not sorted by name: %+v", doc.Benchmarks)
	}
	a := doc.Benchmarks[0]
	if a.DeltaNs == nil || *a.DeltaNs < 0.099 || *a.DeltaNs > 0.101 {
		t.Fatalf("DeltaNs wrong: %+v", a)
	}
	if a.DeltaAllocs == nil || *a.DeltaAllocs != 0 {
		t.Fatalf("DeltaAllocs wrong: %+v", a)
	}
	if doc.Benchmarks[1].OldNsPerOp != nil || doc.Benchmarks[1].DeltaNs != nil {
		t.Fatalf("OnlyNew must have no old side: %+v", doc.Benchmarks[1])
	}
	if doc.Benchmarks[2].NewNsPerOp != nil {
		t.Fatalf("OnlyOld must have no new side: %+v", doc.Benchmarks[2])
	}
}
