// Command benchdiff compares two `go test -bench` outputs and fails on
// performance regressions, guarding the engine's steady-state cost (see
// DESIGN.md §8). It understands three input formats, auto-detected per
// file: plain `go test -bench` text, `go test -json` (test2json) streams,
// and its own canonical JSON (written by -record).
//
// Usage:
//
//	benchdiff old new            compare two bench outputs ("-" = stdin)
//	benchdiff -record out.json f parse f and write canonical JSON
//	benchdiff -threshold 0.05 …  tighten the regression threshold
//	benchdiff -json old new      emit the comparison as JSON
//	benchdiff -bench Typed o n   restrict to names matching a regexp
//	benchdiff -stat median o n   aggregate -count=N runs by median
//
// A benchmark regresses when its ns/op or allocs/op in `new` exceeds the
// value in `old` by more than the threshold (default 10%). Benchmarks
// present in only one input are reported but never fail the run.
// Repeated runs of one benchmark (`go test -count=N`) are collapsed
// with -stat: mean (the default) or median, the latter shrugging off a
// single noisy outlier run.
//
// -bench restricts both comparison and recording to benchmarks whose
// (GOMAXPROCS-stripped) name matches the regexp, so one canonical
// baseline file can back several Makefile slices: each slice re-runs
// its own `go test -bench` subset and diffs it against the shared
// baseline without the absent benchmarks muddying the table. A filter
// that matches nothing in an input is an empty-input error (exit 5).
//
// Exit status distinguishes the failure modes so CI wrappers can react
// per cause:
//
//	0  no regression
//	1  regression beyond the threshold
//	2  usage error (bad flags or arguments)
//	3  unreadable input (e.g. missing baseline file)
//	4  malformed input (Benchmark lines present but none parsed)
//	5  empty input (no benchmark data at all)
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sentinel parse failures; run maps each to its own exit status.
var (
	errMalformedInput = errors.New("Benchmark lines present but none parsed; is the output truncated or corrupted?")
	errEmptyInput     = errors.New("no benchmark data found (empty input)")
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// HasAllocs distinguishes a measured 0 allocs/op from a run without
	// -benchmem.
	HasAllocs bool `json:"has_allocs,omitempty"`
}

// File is the canonical JSON document -record writes.
type File struct {
	Benchmarks []Result `json:"benchmarks"`
}

// normalizeName strips the trailing -GOMAXPROCS suffix so runs from
// machines with different core counts still line up.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBenchLine parses one `go test -bench` result line, reporting ok =
// false for non-benchmark lines.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: normalizeName(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
			r.HasAllocs = true
		}
	}
	return r, seen
}

// statFn reduces one benchmark's repeated measurements (from
// `go test -count=N`) to a single value.
type statFn func([]float64) float64

func statMean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func statMedian(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// statByName maps the -stat flag to its reducer.
var statByName = map[string]statFn{
	"mean":   statMean,
	"median": statMedian,
}

// reduce collapses duplicate benchmark names with the given statistic,
// damping run-to-run noise on busy measurement hosts. Order of first
// appearance is preserved; iterations are summed across runs.
func reduce(results []Result, stat statFn) []Result {
	var out []Result
	idx := make(map[string]int)
	samples := make(map[string][3][]float64)
	for _, res := range results {
		i, ok := idx[res.Name]
		if !ok {
			i = len(out)
			idx[res.Name] = i
			out = append(out, res)
			samples[res.Name] = [3][]float64{{res.NsPerOp}, {res.BytesPerOp}, {res.AllocsPerOp}}
			continue
		}
		s := samples[res.Name]
		s[0] = append(s[0], res.NsPerOp)
		s[1] = append(s[1], res.BytesPerOp)
		s[2] = append(s[2], res.AllocsPerOp)
		samples[res.Name] = s
		out[i].Iterations += res.Iterations
		out[i].HasAllocs = out[i].HasAllocs || res.HasAllocs
	}
	for i := range out {
		s := samples[out[i].Name]
		if len(s[0]) > 1 {
			out[i].NsPerOp = stat(s[0])
			out[i].BytesPerOp = stat(s[1])
			out[i].AllocsPerOp = stat(s[2])
		}
	}
	return out
}

// parse reads benchmark results from r, auto-detecting the format.
// Duplicate names are preserved; callers collapse them with reduce.
func parse(r io.Reader) ([]Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Canonical JSON is a single document with a "benchmarks" key.
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		var f File
		if err := json.Unmarshal([]byte(trimmed), &f); err == nil && f.Benchmarks != nil {
			if len(f.Benchmarks) == 0 {
				return nil, errEmptyInput
			}
			return f.Benchmarks, nil
		}
	}
	var out []Result
	benchLike := 0 // lines that looked like benchmark results but failed to parse
	consume := func(line string) {
		if res, ok := parseBenchLine(line); ok {
			out = append(out, res)
		} else if strings.HasPrefix(line, "Benchmark") {
			benchLike++
		}
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		trimmed := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(trimmed, "{") {
			// test2json event: benchmark lines arrive as output events.
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(trimmed), &ev); err == nil && ev.Action == "output" {
				consume(strings.TrimSpace(ev.Output))
				continue
			}
		}
		consume(trimmed)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		if benchLike > 0 {
			return nil, fmt.Errorf("%w (%d candidate line(s))", errMalformedInput, benchLike)
		}
		return nil, errEmptyInput
	}
	return out, nil
}

func parseFile(path string, stat statFn) ([]Result, error) {
	if path == "-" {
		res, err := parse(os.Stdin)
		if err != nil {
			return nil, err
		}
		return reduce(res, stat), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reduce(res, stat), nil
}

// filterResults keeps the benchmarks whose name matches re (nil = all).
// An input left empty by the filter is an empty-input error, the same
// failure as a file with no benchmark data: silently comparing nothing
// would report "ok" for a slice that never ran.
func filterResults(results []Result, re *regexp.Regexp, path string) ([]Result, error) {
	if re == nil {
		return results, nil
	}
	kept := results[:0]
	for _, r := range results {
		if re.MatchString(r.Name) {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("%s: %w (no benchmark matches -bench %q)", path, errEmptyInput, re.String())
	}
	return kept, nil
}

// exitCodeFor maps a parseFile failure to its exit status: malformed
// and empty inputs get their own codes; anything else is an I/O error.
func exitCodeFor(err error) int {
	switch {
	case errors.Is(err, errMalformedInput):
		return 4
	case errors.Is(err, errEmptyInput):
		return 5
	default:
		return 3
	}
}

// Regression is one threshold violation.
type Regression struct {
	Name   string
	Metric string
	Old    float64
	New    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)", r.Name, r.Metric, r.Old, r.New, 100*(r.New/r.Old-1))
}

// ratio formats new relative to old for the comparison table.
func ratio(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "=" // 0 -> 0
		}
		return "worse (from 0)"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV/oldV-1))
}

// compare returns the regressions of new against old under the
// threshold (e.g. 0.10 allows 10% slack on ns/op and allocs/op).
func compare(oldRes, newRes []Result, threshold float64) []Regression {
	oldBy := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	var regs []Regression
	for _, n := range newRes {
		o, ok := oldBy[n.Name]
		if !ok {
			continue
		}
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{n.Name, "ns/op", o.NsPerOp, n.NsPerOp})
		}
		if o.HasAllocs && n.HasAllocs {
			limit := o.AllocsPerOp * (1 + threshold)
			if o.AllocsPerOp == 0 {
				limit = 0 // zero-alloc benchmarks must stay zero-alloc
			}
			if n.AllocsPerOp > limit {
				regs = append(regs, Regression{n.Name, "allocs/op", o.AllocsPerOp, n.AllocsPerOp})
			}
		}
	}
	return regs
}

func writeTable(w io.Writer, oldRes, newRes []Result) {
	oldBy := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(newRes))
	for _, r := range newRes {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	newBy := make(map[string]Result, len(newRes))
	for _, r := range newRes {
		newBy[r.Name] = r
	}
	fmt.Fprintf(w, "%-44s %14s %14s %10s %12s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs")
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %10s %12s\n", name, "(absent)", n.NsPerOp, "-", "-")
			continue
		}
		dAllocs := "-"
		if o.HasAllocs && n.HasAllocs {
			dAllocs = ratio(o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %10s %12s\n", name, o.NsPerOp, n.NsPerOp, ratio(o.NsPerOp, n.NsPerOp), dAllocs)
	}
	for _, r := range oldRes {
		if _, ok := newBy[r.Name]; !ok {
			fmt.Fprintf(w, "%-44s %14.0f %14s %10s %12s\n", r.Name, r.NsPerOp, "(absent)", "-", "-")
		}
	}
}

// DiffEntry is one benchmark's comparison row in -json output. Nil
// pointers mark a benchmark absent from that side; DeltaNs and
// DeltaAllocs are fractional changes (0.1 = +10%) present only when
// both sides measured the metric.
type DiffEntry struct {
	Name        string   `json:"name"`
	OldNsPerOp  *float64 `json:"old_ns_per_op,omitempty"`
	NewNsPerOp  *float64 `json:"new_ns_per_op,omitempty"`
	DeltaNs     *float64 `json:"delta_ns,omitempty"`
	OldAllocs   *float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocs   *float64 `json:"new_allocs_per_op,omitempty"`
	DeltaAllocs *float64 `json:"delta_allocs,omitempty"`
}

// DiffRegression is one threshold violation in -json output.
type DiffRegression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
}

// DiffDoc is the top-level -json comparison document.
type DiffDoc struct {
	Threshold   float64          `json:"threshold"`
	OK          bool             `json:"ok"`
	Benchmarks  []DiffEntry      `json:"benchmarks"`
	Regressions []DiffRegression `json:"regressions"`
}

// buildDiff assembles the machine-readable comparison: the union of
// both result sets sorted by name, plus the regression list.
func buildDiff(oldRes, newRes []Result, regs []Regression, threshold float64) DiffDoc {
	byName := map[string]*DiffEntry{}
	var names []string
	get := func(name string) *DiffEntry {
		if e, ok := byName[name]; ok {
			return e
		}
		e := &DiffEntry{Name: name}
		byName[name] = e
		names = append(names, name)
		return e
	}
	ptr := func(v float64) *float64 { return &v }
	for _, r := range oldRes {
		e := get(r.Name)
		e.OldNsPerOp = ptr(r.NsPerOp)
		if r.HasAllocs {
			e.OldAllocs = ptr(r.AllocsPerOp)
		}
	}
	for _, r := range newRes {
		e := get(r.Name)
		e.NewNsPerOp = ptr(r.NsPerOp)
		if r.HasAllocs {
			e.NewAllocs = ptr(r.AllocsPerOp)
		}
	}
	sort.Strings(names)
	doc := DiffDoc{Threshold: threshold, OK: len(regs) == 0, Regressions: []DiffRegression{}}
	for _, name := range names {
		e := byName[name]
		if e.OldNsPerOp != nil && e.NewNsPerOp != nil && *e.OldNsPerOp > 0 {
			e.DeltaNs = ptr(*e.NewNsPerOp / *e.OldNsPerOp - 1)
		}
		if e.OldAllocs != nil && e.NewAllocs != nil && *e.OldAllocs > 0 {
			e.DeltaAllocs = ptr(*e.NewAllocs / *e.OldAllocs - 1)
		}
		doc.Benchmarks = append(doc.Benchmarks, *e)
	}
	for _, r := range regs {
		doc.Regressions = append(doc.Regressions, DiffRegression{Name: r.Name, Metric: r.Metric, Old: r.Old, New: r.New})
	}
	return doc
}

func record(outPath string, results []Result) error {
	f := File{Benchmarks: results}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "allowed fractional regression in ns/op and allocs/op")
	recordPath := fs.String("record", "", "parse one input and write canonical JSON to this path instead of comparing")
	jsonOut := fs.Bool("json", false, "emit the comparison as a JSON document instead of a table")
	benchFilter := fs.String("bench", "", "only consider benchmarks whose name matches this regexp")
	statName := fs.String("stat", "mean", "aggregate repeated runs of a benchmark with this statistic: mean or median")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold 0.10] [-json] [-bench regexp] [-stat mean|median] old new")
		fmt.Fprintln(stderr, "       benchdiff -record out.json bench-output")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stat, ok := statByName[*statName]
	if !ok {
		fmt.Fprintf(stderr, "benchdiff: -stat %q: want mean or median\n", *statName)
		return 2
	}
	var benchRe *regexp.Regexp
	if *benchFilter != "" {
		var err error
		if benchRe, err = regexp.Compile(*benchFilter); err != nil {
			fmt.Fprintln(stderr, "benchdiff: -bench:", err)
			return 2
		}
	}
	if *recordPath != "" {
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		results, err := parseFile(fs.Arg(0), stat)
		if err == nil {
			results, err = filterResults(results, benchRe, fs.Arg(0))
		}
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return exitCodeFor(err)
		}
		if err := record(*recordPath, results); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 3
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(results), *recordPath)
		return 0
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldRes, err := parseFile(fs.Arg(0), stat)
	if err == nil {
		oldRes, err = filterResults(oldRes, benchRe, fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: baseline:", err)
		return exitCodeFor(err)
	}
	newRes, err := parseFile(fs.Arg(1), stat)
	if err == nil {
		newRes, err = filterResults(newRes, benchRe, fs.Arg(1))
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: candidate:", err)
		return exitCodeFor(err)
	}
	regs := compare(oldRes, newRes, *threshold)
	if *jsonOut {
		// Machine-readable mode: same exit-code contract, one JSON
		// document on stdout instead of the table.
		data, err := json.MarshalIndent(buildDiff(oldRes, newRes, regs, *threshold), "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 3
		}
		fmt.Fprintln(stdout, string(data))
		if len(regs) > 0 {
			return 1
		}
		return 0
	}
	writeTable(stdout, oldRes, newRes)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "\nok: no regression beyond %.0f%%\n", *threshold*100)
		return 0
	}
	fmt.Fprintf(stdout, "\nFAIL: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Fprintln(stdout, "  "+r.String())
	}
	return 1
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
