// Command datagen creates synthetic heterogeneous systems with the
// paper's §III-D2 Gram-Charlier pipeline and writes them as JSON for the
// tradeoff command, reporting how well the synthetic task types preserve
// the real data's heterogeneity measures.
//
// Usage:
//
//	datagen [-tasktypes 25] [-special 4] [-speedup 10] [-seed 1] -o system.json \
//	        [-tasks 200000] [-window 0] [-traceout trace.json]
//
// With -tasks N the command also emits an N-task workload trace for the
// generated system, making complete 50k/200k/1M-task scale instances
// reproducible from a single seed. A zero -window keeps the paper's
// data-set-2 arrival density (0.9 s per task) so large instances stay
// comparably loaded. The trace uses the same rng stream the tradeoff
// command derives when regenerating a trace for a loaded system, so
//
//	tradeoff -system system.json -tasks N -window W -seed S
//
// reproduces the written trace bit for bit; pass the written file
// directly with -loadtrace to skip regeneration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tradeoff/internal/data"
	"tradeoff/internal/datagen"
	"tradeoff/internal/etcgen"
	"tradeoff/internal/hcs"
	"tradeoff/internal/rng"
	"tradeoff/internal/workload"
)

func main() {
	var (
		taskTypes = flag.Int("tasktypes", 25, "synthetic task types to add")
		special   = flag.Int("special", 4, "special-purpose machine types to add")
		minTasks  = flag.Int("mintasks", 2, "min task types per special machine")
		maxTasks  = flag.Int("maxtasks", 3, "max task types per special machine")
		speedup   = flag.Float64("speedup", 10, "special-purpose speedup factor")
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("o", "system.json", "output path")
		tableIII  = flag.Bool("table3", true, "use Table III machine counts (requires defaults)")
		method    = flag.String("method", "gram-charlier", "generation method: gram-charlier (paper), cvb, range")
		machines  = flag.Int("machines", 13, "machine types for cvb/range methods")
		basePower = flag.Float64("basepower", 120, "fleet-average power in watts for cvb/range methods")
		tasks     = flag.Int("tasks", 0, "also emit a workload trace with this many tasks (0 = system only)")
		window    = flag.Float64("window", 0, "trace window in seconds (0 = 0.9 s per task, the data-set-2 density)")
		traceOut  = flag.String("traceout", "trace.json", "trace output path (with -tasks)")
	)
	flag.Parse()

	switch *method {
	case "cvb", "range":
		sys, err := writeClassic(*method, *taskTypes, *machines, *basePower, *seed, *out)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(sys, *tasks, *window, *seed, *traceOut); err != nil {
			fatal(err)
		}
		return
	case "gram-charlier":
	default:
		fatal(fmt.Errorf("unknown method %q (want gram-charlier, cvb, range)", *method))
	}

	cfg := datagen.Config{
		NewTaskTypes:        *taskTypes,
		SpecialMachineTypes: *special,
		MinTasksPerSpecial:  *minTasks,
		MaxTasksPerSpecial:  *maxTasks,
		Speedup:             *speedup,
	}
	if *tableIII && *special == 4 {
		def := datagen.Default()
		cfg.GeneralCounts = def.GeneralCounts
		cfg.SpecialCounts = def.SpecialCounts
	}
	base := data.RealSystem()
	sys, err := datagen.Enlarge(base, cfg, rng.New(*seed))
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(sys, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d task types, %d machine types, %d machines\n",
		*out, sys.NumTaskTypes(), sys.NumMachineTypes(), sys.NumMachines())

	if *taskTypes > 1 {
		etcRep, err := datagen.CompareHeterogeneity(sys.ETC, base.NumTaskTypes())
		if err == nil {
			fmt.Printf("ETC heterogeneity: real {%v}, synthetic {%v}, distance %.3f\n",
				etcRep.Real, etcRep.Synthetic, etcRep.Distance)
		}
		epcRep, err := datagen.CompareHeterogeneity(sys.EPC, base.NumTaskTypes())
		if err == nil {
			fmt.Printf("EPC heterogeneity: real {%v}, synthetic {%v}, distance %.3f\n",
				epcRep.Real, epcRep.Synthetic, epcRep.Distance)
		}
	}
	if err := writeTrace(sys, *tasks, *window, *seed, *traceOut); err != nil {
		fatal(err)
	}
}

// writeTrace generates and writes an n-task trace for sys. A no-op when
// n <= 0. The trace stream is (seed, 10) — the one the tradeoff command
// uses to regenerate a trace for a loaded system file — so the written
// instance is reproducible from the seed alone.
func writeTrace(sys *hcs.System, n int, window float64, seed uint64, out string) error {
	if n <= 0 {
		return nil
	}
	if window == 0 {
		window = 0.9 * float64(n)
	}
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: n, Window: window}, rng.NewStream(seed, 10))
	if err != nil {
		return err
	}
	raw, err := workload.EncodeTrace(tr)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d tasks over %.0f s\n", out, tr.NumTasks(), tr.Window)
	return nil
}

// writeClassic generates a system with one of the Ali et al. methods
// (range-based or CVB), derives a plausible EPC matrix, and returns the
// written system so a trace can be attached.
func writeClassic(method string, taskTypes, machineTypes int, basePower float64, seed uint64, out string) (*hcs.System, error) {
	src := rng.New(seed)
	var (
		etc hcs.Matrix
		err error
	)
	switch method {
	case "cvb":
		etc, err = etcgen.CVB(etcgen.CVBConfig{
			TaskTypes:    taskTypes,
			MachineTypes: machineTypes,
			MeanTask:     150,
			Vtask:        0.6,
			Vmach:        0.35,
		}, src)
	case "range":
		etc, err = etcgen.RangeBased(etcgen.RangeConfig{
			TaskTypes:    taskTypes,
			MachineTypes: machineTypes,
			Rtask:        300,
			Rmach:        10,
		}, src)
	}
	if err != nil {
		return nil, err
	}
	epc, err := etcgen.PowerFromETC(etc, basePower, 0.4, src)
	if err != nil {
		return nil, err
	}
	sys, err := etcgen.SystemFrom(etc, epc)
	if err != nil {
		return nil, err
	}
	raw, err := json.MarshalIndent(sys, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s (%s method): %d task types, %d machine types\n",
		out, method, sys.NumTaskTypes(), sys.NumMachineTypes())
	return sys, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
