// Command detlint runs the project's determinism and hot-path
// static-analysis suite (internal/lint, DESIGN.md §9) over every package
// in the module, including test files. It is stdlib-only: packages are
// parsed and type-checked from source with go/parser and go/types.
//
// Usage:
//
//	detlint [-C dir]
//
// Diagnostics are printed one per line as `file:line: analyzer: message`
// with paths relative to the module root, followed by a per-analyzer
// findings summary. Exit status is 0 when clean, 1 when any finding is
// reported, and 2 when the module fails to load or type-check.
//
// A finding is suppressed by a `//detlint:allow <analyzer> <reason>`
// comment on the offending line or the line above; `make lint` wires the
// tool into `make check`.
package main

import (
	"flag"
	"fmt"
	"os"

	"tradeoff/internal/lint"
)

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: detlint [-C dir]")
		return 2
	}
	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	analyzers := lint.Analyzers()
	diags := lint.Run(mod, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintf(stdout, "detlint: %d package(s), %d finding(s)\n", len(mod.Units), len(diags))
	for _, line := range lint.Summary(analyzers, diags) {
		fmt.Fprintln(stdout, "  "+line)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
