// Command detlint runs the project's determinism and hot-path
// static-analysis suite (internal/lint, DESIGN.md §9) over every package
// in the module, including test files. It is stdlib-only: packages are
// parsed and type-checked from source with go/parser and go/types.
//
// Usage:
//
//	detlint [-C dir] [-json]
//
// Diagnostics are printed one per line as `file:line: analyzer: message`
// with paths relative to the module root, followed by a per-analyzer
// findings summary. With -json a single machine-readable report object
// is emitted instead: module path, package count, the findings (file,
// line, column, analyzer, message), and per-analyzer counts. Exit
// status is 0 when clean, 1 when any finding is reported, and 2 when
// the module fails to load or type-check.
//
// A finding is suppressed by a `//detlint:allow <analyzer> <reason>`
// comment on the offending line or the line above; `make lint` wires the
// tool into `make check`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tradeoff/internal/lint"
)

// report is the -json output schema.
type report struct {
	Module   string         `json:"module"`
	Packages int            `json:"packages"`
	Findings []finding      `json:"findings"`
	Counts   map[string]int `json:"counts"`
}

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint")
	asJSON := fs.Bool("json", false, "emit one machine-readable report object instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: detlint [-C dir] [-json]")
		return 2
	}
	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	analyzers := lint.Analyzers()
	diags := lint.Run(mod, analyzers)
	if *asJSON {
		rep := report{
			Module:   mod.Path,
			Packages: len(mod.Units),
			Findings: []finding{},
			Counts:   map[string]int{},
		}
		for _, a := range analyzers {
			rep.Counts[a.Name] = 0
		}
		for _, d := range diags {
			rep.Findings = append(rep.Findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			rep.Counts[d.Analyzer]++
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stdout, "detlint: %d package(s), %d finding(s)\n", len(mod.Units), len(diags))
		for _, line := range lint.Summary(analyzers, diags) {
			fmt.Fprintln(stdout, "  "+line)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
