package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// dirtySource seeds one maprange finding in an internal package: map
// iteration feeding an append is order-sensitive.
const dirtySource = `package x

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`

func TestRunCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module cleanmod\n",
		"internal/x/x.go": "package x\n\n// Add is trivially clean.\nfunc Add(a, b int) int { return a + b }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s\nstdout:\n%s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "0 finding(s)") {
		t.Errorf("missing zero-findings summary:\n%s", stdout.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module dirtymod\n",
		"internal/x/x.go": dirtySource,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "maprange") {
		t.Errorf("text output does not name the firing analyzer:\n%s", stdout.String())
	}
}

func TestRunLoadFailureExitTwo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module badmod\n",
		"internal/x/x.go": "package x\n\nfunc Broken() int { return undefinedSymbol }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "typecheck") {
		t.Errorf("stderr does not report the typecheck failure:\n%s", stderr.String())
	}
}

func TestRunJSONReport(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module dirtymod\n",
		"internal/x/x.go": dirtySource,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Module != "dirtymod" {
		t.Errorf("module = %q, want dirtymod", rep.Module)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("JSON report has no findings despite exit 1")
	}
	f := rep.Findings[0]
	if f.Analyzer != "maprange" || f.File != "internal/x/x.go" || f.Line == 0 || f.Column == 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
	if rep.Counts["maprange"] != len(rep.Findings) {
		t.Errorf("counts[maprange] = %d, want %d", rep.Counts["maprange"], len(rep.Findings))
	}
	// Silent analyzers still appear with explicit zero counts.
	if n, ok := rep.Counts["snapshotcover"]; !ok || n != 0 {
		t.Errorf("counts[snapshotcover] = %d (present=%v), want explicit 0", n, ok)
	}
}

func TestRunJSONCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":          "module cleanmod\n",
		"internal/x/x.go": "package x\n\n// Add is trivially clean.\nfunc Add(a, b int) int { return a + b }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want present-but-empty array", rep.Findings)
	}
}
