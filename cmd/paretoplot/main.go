// Command paretoplot renders utility/energy front CSV files (as written
// by the tradeoff command, or any CSV with utility and energy columns) as
// ASCII charts on stdout or standalone SVG files.
//
// Usage:
//
//	paretoplot [-svg out.svg] [-title T] front1.csv [front2.csv ...]
//
// Each input file becomes one series, named after the file.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tradeoff/internal/plot"
)

func main() {
	var (
		svgPath = flag.String("svg", "", "write SVG to this path instead of ASCII to stdout")
		title   = flag.String("title", "utility vs energy trade-off", "chart title")
		width   = flag.Int("width", 800, "SVG width / ASCII columns")
		height  = flag.Int("height", 600, "SVG height / ASCII rows")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "paretoplot: need at least one CSV file")
		os.Exit(2)
	}
	chart := &plot.Chart{
		Title:  *title,
		XLabel: "total energy consumed (MJ)",
		YLabel: "total utility earned",
	}
	for _, path := range flag.Args() {
		series, err := loadSeries(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paretoplot: %s: %v\n", path, err)
			os.Exit(1)
		}
		chart.Series = append(chart.Series, series)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(chart.SVG(*width, *height)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "paretoplot:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svgPath)
		return
	}
	cols, rows := *width, *height
	if cols > 120 {
		cols = 76
	}
	if rows > 40 {
		rows = 20
	}
	fmt.Print(chart.ASCII(cols, rows))
}

// loadSeries reads a CSV with a header containing "utility" and either
// "energy_mj" or "energy"/"energy_joules" columns.
func loadSeries(path string) (plot.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return plot.Series{}, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return plot.Series{}, err
	}
	if len(records) < 2 {
		return plot.Series{}, fmt.Errorf("no data rows")
	}
	header := records[0]
	uCol, eCol, scale := -1, -1, 1.0
	for i, h := range header {
		switch strings.ToLower(strings.TrimSpace(h)) {
		case "utility":
			uCol = i
		case "energy_mj":
			eCol, scale = i, 1
		case "energy", "energy_joules":
			if eCol == -1 { // prefer energy_mj when both exist
				eCol, scale = i, 1e-6
			}
		}
	}
	if uCol == -1 || eCol == -1 {
		return plot.Series{}, fmt.Errorf("header must contain utility and energy columns, got %v", header)
	}
	s := plot.Series{Name: strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))}
	for ln, rec := range records[1:] {
		u, err := strconv.ParseFloat(strings.TrimSpace(rec[uCol]), 64)
		if err != nil {
			return plot.Series{}, fmt.Errorf("row %d: bad utility: %w", ln+2, err)
		}
		e, err := strconv.ParseFloat(strings.TrimSpace(rec[eCol]), 64)
		if err != nil {
			return plot.Series{}, fmt.Errorf("row %d: bad energy: %w", ln+2, err)
		}
		s.Points = append(s.Points, plot.Point{X: e * scale, Y: u})
	}
	return s, nil
}
