package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "front.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSeriesPrefersMJColumn(t *testing.T) {
	path := writeTemp(t, "utility,energy_joules,energy_mj\n10,2000000,2\n20,3000000,3\n")
	s, err := loadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[0].X != 2 || s.Points[0].Y != 10 {
		t.Fatalf("series = %+v", s)
	}
	if s.Name != "front" {
		t.Fatalf("series name = %q", s.Name)
	}
}

func TestLoadSeriesJoulesFallback(t *testing.T) {
	path := writeTemp(t, "utility,energy\n10,2000000\n")
	s, err := loadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].X != 2 { // scaled to MJ
		t.Fatalf("X = %v, want 2", s.Points[0].X)
	}
}

func TestLoadSeriesErrors(t *testing.T) {
	cases := []string{
		"utility,energy_mj\n",       // no rows
		"wrong,header\n1,2\n",       // missing columns
		"utility,energy_mj\nxx,2\n", // bad utility
		"utility,energy_mj\n1,yy\n", // bad energy
	}
	for i, c := range cases {
		if _, err := loadSeries(writeTemp(t, c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := loadSeries("/nonexistent/file.csv"); err == nil {
		t.Error("missing file accepted")
	}
}
