package main

import (
	"os"
	"strings"
	"testing"
)

const goodTrace = `{"type":"generation","ts":1,"label":"ds1/x","gen":1,"pop":4,"full_evals":4,"delta_evals":0,"machines_simulated":8,"machines_inherited":0,"dirty_mean":1,"dirty_max":2,"machines":2,"front_size":1,"hv":3.5,"eps":0,"spread":0,"front":[[10,2]]}
{"type":"migration","ts":2,"gen":5,"from":0,"to":1,"count":3}
{"type":"run","ts":3,"dataset":"ds1","variant":"random","run":0,"seed":1,"hv":4,"max_utility":10,"front_size":1}
`

func TestRunStdin(t *testing.T) {
	var out, errb strings.Builder
	code := run(nil, strings.NewReader(goodTrace), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	want := "stdin: ok: 1 generation, 1 migration, 1 run record(s)\n"
	if out.String() != want {
		t.Fatalf("stdout %q, want %q", out.String(), want)
	}
}

func TestRunFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, []byte(goodTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{path}, nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok: 1 generation") {
		t.Fatalf("stdout %q", out.String())
	}
}

func TestRunViolations(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		code  int
	}{
		{"empty", "", 1},
		{"garbage", "not json\n", 1},
		{"bad type", `{"type":"nope","ts":1}` + "\n", 1},
		{"non-increasing gen", strings.Repeat(`{"type":"generation","ts":1,"label":"a","gen":1,"pop":2,"full_evals":2,"delta_evals":0,"machines_simulated":2,"machines_inherited":0,"dirty_mean":0,"dirty_max":0,"machines":1,"front_size":0,"hv":0,"eps":0,"spread":0,"front":[]}`+"\n", 2), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(nil, strings.NewReader(tc.trace), &out, &errb); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.code, errb.String())
			}
		})
	}
}

func TestRunReportsLineAndRecordType(t *testing.T) {
	trace := goodTrace + `{"type":"migration","ts":9,"gen":5,"from":0}` + "\n"
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(trace), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "stdin:4: migration record:") {
		t.Fatalf("stderr %q, want line and record type", errb.String())
	}
}

func TestRunReportsLineForUnparseable(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("not json\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "stdin:1:") {
		t.Fatalf("stderr %q, want line number", errb.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"/does/not/exist.jsonl"}, nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunTooManyArgs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"a", "b"}, nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
