// Command tracecheck validates a JSONL telemetry trace produced by the
// -trace flag of cmd/tradeoff or cmd/experiments: every line must parse,
// carry the fields its record type requires, and keep per-run generation
// numbers strictly increasing.
//
// Usage:
//
//	tracecheck run.jsonl
//	tracecheck < run.jsonl
//
// On success it prints a one-line summary of the record counts and exits
// 0; the first violation is reported as FILE:LINE with the offending
// record's type and the exit status is 1 (2 for usage or I/O errors).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"tradeoff/internal/obs"
)

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var in io.Reader
	name := "stdin"
	switch fs.NArg() {
	case 0:
		in = stdin
	case 1:
		name = fs.Arg(0)
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, "tracecheck:", err)
			return 2
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(stderr, "usage: tracecheck [trace.jsonl]")
		return 2
	}
	sum, err := obs.ValidateTrace(in)
	if err != nil {
		var te *obs.TraceError
		switch {
		case errors.As(err, &te) && te.RecordType != "":
			fmt.Fprintf(stderr, "tracecheck: %s:%d: %s record: %v\n", name, te.Line, te.RecordType, te.Err)
		case errors.As(err, &te):
			fmt.Fprintf(stderr, "tracecheck: %s:%d: %v\n", name, te.Line, te.Err)
		default:
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", name, err)
		}
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok: %d generation, %d migration, %d run record(s)\n",
		name, sum.Generations, sum.Migrations, sum.Runs)
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }
