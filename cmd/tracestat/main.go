// Command tracestat analyzes a JSONL telemetry trace produced by the
// -trace flag of cmd/tradeoff or cmd/experiments (any schema version
// v1–v4): phase-time rollups from -phase-profile runs, per-label
// hypervolume trajectories with convergence-stall detection, fitness-
// cache hit-rate trends, and island migration summaries.
//
// Usage:
//
//	tracestat run.jsonl
//	tracestat -json < run.jsonl
//	tracestat -stall-window 100 -fail-on-stall run.jsonl
//	tracestat run.jsonl.w0 run.jsonl.w1
//
// Several trace files merge into one analysis — the shape a distributed
// run leaves behind: one worker-local trace per -distribute process
// (suffix .wN), each covering only that worker's island shard.
// Migration summaries aggregate across files, so the islands section
// reconstructs the full ring — total migrant counts and the tick skew
// between islands (max - min last migration generation) — even though
// no single worker logged every edge; a straggling worker's islands
// show up as nonzero skew. (Merge the worker traces OR analyze the
// parent's authoritative trace alone; merging both would count the
// shared events twice.)
//
// Each trace is validated first (the same schema rules as tracecheck);
// analysis of valid traces prints a text report, or the full analysis
// as JSON with -json. Exit status mirrors tracecheck: 0 on success, 1
// for an invalid trace, 2 for usage or I/O errors — plus 3 when
// -fail-on-stall is set and a hypervolume plateau of at least
// -stall-window generations was detected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tradeoff/internal/obs"
)

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the analysis as JSON")
	stallWindow := fs.Int("stall-window", 50, "generations without hypervolume improvement that flag a stall")
	stallTol := fs.Float64("stall-tol", 1e-4, "relative hypervolume gain below which a generation counts as no improvement")
	failOnStall := fs.Bool("fail-on-stall", false, "exit 3 when any label stalled")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var ins []io.Reader
	name := "stdin"
	if fs.NArg() == 0 {
		ins = []io.Reader{stdin}
	} else {
		for _, arg := range fs.Args() {
			f, err := os.Open(arg)
			if err != nil {
				fmt.Fprintln(stderr, "tracestat:", err)
				return 2
			}
			defer f.Close()
			ins = append(ins, f)
		}
		name = strings.Join(fs.Args(), ", ")
	}
	an, err := obs.AnalyzeTraces(ins, obs.AnalyzeOptions{
		StallWindow: *stallWindow,
		StallTol:    *stallTol,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %s: %v\n", name, err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(an); err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 2
		}
	} else {
		writeText(stdout, name, an)
	}
	if *failOnStall && an.Stalled {
		fmt.Fprintf(stderr, "tracestat: %s: convergence stall detected (plateau >= %d generations)\n", name, *stallWindow)
		return 3
	}
	return 0
}

func writeText(w io.Writer, name string, an *obs.TraceAnalysis) {
	fmt.Fprintf(w, "%s: %d generation, %d migration, %d run record(s)\n",
		name, an.Records.Generations, an.Records.Migrations, an.Records.Runs)
	if len(an.Phases) > 0 {
		fmt.Fprintf(w, "\nphase time (%d profiled generation(s)):\n", an.ProfiledGenerations)
		fmt.Fprintf(w, "  %-14s %14s %7s\n", "phase", "total (ms)", "share")
		for _, p := range an.Phases {
			fmt.Fprintf(w, "  %-14s %14.3f %6.1f%%\n", p.Phase, float64(p.TotalNanos)/1e6, 100*p.Share)
		}
	}
	for _, l := range an.Labels {
		label := l.Label
		if label == "" {
			label = "(unlabeled)"
		}
		fmt.Fprintf(w, "\nlabel %s: generations %d-%d (%d record(s))\n",
			label, l.FirstGen, l.LastGen, l.Generations)
		fmt.Fprintf(w, "  hypervolume %.6g -> %.6g (best %.6g at generation %d)\n",
			l.HVFirst, l.HVLast, l.HVBest, l.BestGen)
		stalled := ""
		if l.Stalled {
			stalled = "   <- stalled"
		}
		fmt.Fprintf(w, "  plateau: max %d, %d open at end of trace%s\n", l.MaxPlateau, l.EndPlateau, stalled)
		if l.CacheHitEarly >= 0 || l.CacheHitLate >= 0 {
			fmt.Fprintf(w, "  cache hit rate: %.3f early -> %.3f late\n", l.CacheHitEarly, l.CacheHitLate)
		}
	}
	if is := an.Islands; is != nil {
		fmt.Fprintf(w, "\nislands: %d island(s), %d migration tick(s), %d migrant(s), tick skew %d\n",
			is.Islands, is.Ticks, is.Migrants, is.TickSkew)
		for _, st := range is.PerIsland {
			fmt.Fprintf(w, "  island %d: %d migrant(s) sent, last tick at generation %d\n",
				st.Island, st.Migrants, st.LastGen)
		}
	}
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }
