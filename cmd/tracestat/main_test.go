package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"tradeoff/internal/obs"
)

// genLine renders a v4 generation record with the given label, gen,
// hypervolume, cache hit rate, and a uniform per-phase time.
func genLine(label string, gen int, hv, hitRate float64, phaseNS int64) string {
	var phases strings.Builder
	for p := 0; p < obs.NumPhases; p++ {
		if p > 0 {
			phases.WriteByte(',')
		}
		fmt.Fprintf(&phases, "%d", phaseNS)
	}
	return fmt.Sprintf(`{"v":4,"type":"generation","ts":%d,"label":%q,"gen":%d,"pop":4,"full_evals":4,"delta_evals":0,"machines_simulated":8,"machines_inherited":0,"cache_hits":8,"cache_misses":2,"cache_hit_rate":%g,"cache_evictions":0,"machine_cache_hits":4,"machine_cache_misses":1,"machine_cache_hit_rate":0.8,"typed_tasks":10,"typed_runs":5,"arena_occupancy":0.5,"phase_ns":[%s],"dirty_mean":1,"dirty_max":2,"machines":2,"front_size":1,"hv":%g,"eps":0,"spread":0,"front":[[10,2]]}`,
		gen, label, gen, hitRate, phases.String(), hv) + "\n"
}

func sampleTrace() string {
	var b strings.Builder
	// Label "a": improves every generation. Label "b": flat after gen 1.
	for g := 1; g <= 8; g++ {
		b.WriteString(genLine("a", g, float64(g), 0.1*float64(g), 1000))
		b.WriteString(genLine("b", g, 1.0, 0.5, 0))
	}
	b.WriteString(`{"type":"migration","ts":100,"gen":4,"from":0,"to":1,"count":3}` + "\n")
	b.WriteString(`{"type":"migration","ts":101,"gen":4,"from":1,"to":0,"count":2}` + "\n")
	b.WriteString(`{"type":"migration","ts":102,"gen":8,"from":0,"to":1,"count":1}` + "\n")
	b.WriteString(`{"type":"run","ts":200,"dataset":"ds1","variant":"random","run":0,"seed":1,"hv":8,"max_utility":10,"front_size":1}` + "\n")
	return b.String()
}

func TestRunText(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(sampleTrace()), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"stdin: 16 generation, 3 migration, 1 run record(s)",
		"phase time (8 profiled generation(s)):",
		"select",
		"migration",
		"label a: generations 1-8 (8 record(s))",
		"hypervolume 1 -> 8 (best 8 at generation 8)",
		"label b:",
		"cache hit rate:",
		"islands: 2 island(s), 2 migration tick(s), 6 migrant(s), tick skew 4",
		"island 0: 4 migrant(s) sent, last tick at generation 8",
		"island 1: 2 migrant(s) sent, last tick at generation 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-json"}, strings.NewReader(sampleTrace()), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	var an obs.TraceAnalysis
	if err := json.Unmarshal([]byte(out.String()), &an); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if an.Records.Generations != 16 || an.Records.Migrations != 3 || an.Records.Runs != 1 {
		t.Fatalf("record counts %+v", an.Records)
	}
	if an.ProfiledGenerations != 8 {
		t.Fatalf("ProfiledGenerations = %d, want 8", an.ProfiledGenerations)
	}
	if len(an.Phases) != obs.NumPhases {
		t.Fatalf("got %d phases, want %d", len(an.Phases), obs.NumPhases)
	}
	if len(an.Labels) != 2 {
		t.Fatalf("got %d labels, want 2", len(an.Labels))
	}
	if an.Islands == nil || an.Islands.Islands != 2 {
		t.Fatalf("islands summary %+v", an.Islands)
	}
}

func TestRunStall(t *testing.T) {
	var b strings.Builder
	for g := 1; g <= 10; g++ {
		b.WriteString(genLine("flat", g, 1.0, 0.5, 0))
	}
	trace := b.String()

	var out, errb strings.Builder
	if code := run([]string{"-stall-window", "5"}, strings.NewReader(trace), &out, &errb); code != 0 {
		t.Fatalf("without -fail-on-stall: exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "<- stalled") {
		t.Fatalf("text output lacks stall marker:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-stall-window", "5", "-fail-on-stall"}, strings.NewReader(trace), &out, &errb); code != 3 {
		t.Fatalf("with -fail-on-stall: exit %d, want 3 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "convergence stall detected") {
		t.Fatalf("stderr %q", errb.String())
	}
}

func TestRunNoStallExitZero(t *testing.T) {
	var b strings.Builder
	for g := 1; g <= 10; g++ {
		b.WriteString(genLine("up", g, float64(g), 0.5, 0))
	}
	var out, errb strings.Builder
	if code := run([]string{"-stall-window", "5", "-fail-on-stall"}, strings.NewReader(b.String()), &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errb.String())
	}
}

func TestRunInvalidTrace(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("not json\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "tracestat: stdin:") {
		t.Fatalf("stderr %q", errb.String())
	}
}

func TestRunFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, []byte(sampleTrace()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{path}, nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), path+": 16 generation") {
		t.Fatalf("stdout %q", out.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"/does/not/exist.jsonl"}, nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunMultiFile: several trace files — the shape a distributed run
// leaves behind as per-worker .wN traces — merge into one analysis with
// migration summaries aggregated across files.
func TestRunMultiFile(t *testing.T) {
	dir := t.TempDir()
	// Worker 0 owns island 0 and logs its outbound edges; worker 1 owns
	// island 1. Together they reconstruct sampleTrace's migration set,
	// and the generation records split across the files too.
	var w0, w1 strings.Builder
	for g := 1; g <= 8; g++ {
		w0.WriteString(genLine("a", g, float64(g), 0.1*float64(g), 1000))
		w1.WriteString(genLine("b", g, 1.0, 0.5, 0))
	}
	w0.WriteString(`{"type":"migration","ts":100,"gen":4,"from":0,"to":1,"count":3}` + "\n")
	w0.WriteString(`{"type":"migration","ts":102,"gen":8,"from":0,"to":1,"count":1}` + "\n")
	w1.WriteString(`{"type":"migration","ts":101,"gen":4,"from":1,"to":0,"count":2}` + "\n")
	p0, p1 := dir+"/trace.jsonl.w0", dir+"/trace.jsonl.w1"
	if err := os.WriteFile(p0, []byte(w0.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, []byte(w1.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{p0, p1}, nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		p0 + ", " + p1 + ": 16 generation, 3 migration, 0 run record(s)",
		"label a:",
		"label b:",
		// Same ring totals as the single-file sampleTrace analysis:
		// migrant counts sum and tick skew spans the merged ring.
		"islands: 2 island(s), 2 migration tick(s), 6 migrant(s), tick skew 4",
		"island 0: 4 migrant(s) sent, last tick at generation 8",
		"island 1: 2 migrant(s) sent, last tick at generation 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunMultiFileInvalid: a validation failure in a later file names
// the offending trace by position.
func TestRunMultiFileInvalid(t *testing.T) {
	dir := t.TempDir()
	good, bad := dir+"/good.jsonl", dir+"/bad.jsonl"
	if err := os.WriteFile(good, []byte(sampleTrace()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{good, bad}, nil, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "trace 2:") {
		t.Fatalf("stderr %q does not name the failing trace", errb.String())
	}
}

func TestRunSecondFileMissing(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, []byte(sampleTrace()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{path, "/does/not/exist.jsonl"}, nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
