// Command experiments regenerates every table and figure of the paper's
// evaluation section. Tables print verbatim; figure commands evolve the
// seeded NSGA-II populations and print the front series (and optionally
// render SVG charts).
//
// Usage:
//
//	experiments -table 1|2|3
//	experiments -figure 1|2|3|4|5|6 [-scale 0.1] [-pop 100] [-mutation 0.1] \
//	            [-seed 1] [-workers 0] [-svgdir DIR]
//	experiments -all [-scale 0.05]
//
// Figures 3, 4 and 6 run data sets 1, 2 and 3 respectively at laptop-
// scale default checkpoints; -paperscale switches to the paper's
// iteration counts (expect hours), -scale multiplies whichever schedule
// is active.
//
// -trace streams per-generation JSONL telemetry to a file and
// -metrics-addr serves the run's metric registry as Prometheus text on
// /metrics; neither changes any result. -cpuprofile and -memprofile
// write pprof profiles of the whole invocation, and -cache-capacity
// sizes the engines' fitness-memoization cache (negative disables it)
// without changing any front. -machine-cache-capacity likewise sizes the
// machine-bucket memoization cache beneath it, and -kernel selects the
// typed (run-length compressed) or scalar per-machine simulation kernel;
// all settings are bit-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tradeoff/internal/experiments"
	"tradeoff/internal/obs"
	"tradeoff/internal/sched"
	"tradeoff/internal/telemetry"
)

var (
	table       = flag.Int("table", 0, "print table 1-3 and exit")
	figure      = flag.Int("figure", 0, "reproduce figure 1-6")
	all         = flag.Bool("all", false, "reproduce every table and figure")
	scale       = flag.Float64("scale", 1, "multiply iteration checkpoints")
	pop         = flag.Int("pop", 100, "NSGA-II population size")
	mutation    = flag.Float64("mutation", 0.1, "per-offspring mutation probability")
	seed        = flag.Uint64("seed", 1, "random seed")
	workersN    = flag.Int("workers", 0, "evaluation workers per engine (0 = GOMAXPROCS; bit-identical)")
	paperScale  = flag.Bool("paperscale", false, "use the paper's iteration counts (slow)")
	svgDir      = flag.String("svgdir", "", "write SVG charts into this directory")
	matrices    = flag.Bool("matrices", false, "print the embedded real ETC/EPC matrices")
	convergence = flag.Int("convergence", 0, "run the hypervolume-convergence study on data set 1-3")
	baselines   = flag.Int("baselines", 0, "compare single-solution heuristics to the evolved front on data set 1-3")
	wssaCmp     = flag.Int("wssa", 0, "compare NSGA-II against weighted-sum simulated annealing on data set 1-3")
	mutSweep    = flag.Int("mutsweep", 0, "sweep mutation rates on data set 1-3")
	onlineStudy = flag.Int("online", 0, "offline-informs-online study on data set 1-3")
	hetero      = flag.Int("heterogeneity", 0, "heterogeneity-preservation study with N synthetic task types")
	ablation    = flag.Int("ablation", 0, "design-choice ablation on data set 1-3")
	repeats     = flag.Int("repeats", 0, "statistical repeats study on data set 1-3")
	runs        = flag.Int("runs", 5, "runs per variant for -repeats")
	tracePath   = flag.String("trace", "", "stream per-generation JSONL telemetry to this file")
	metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-text metrics on this address (e.g. :9090)")
	phaseProf   = flag.Bool("phase-profile", false, "time the engines' generation phases and print a summary after the run")
	flightRec   = flag.Int("flight-recorder", 0, "retain the last N telemetry events for SIGUSR1/panic dumps (0 = off)")
	flightDump  = flag.String("flight-dump", "", "write flight-recorder dumps to this file (default stderr)")
	cacheCap    = flag.Int("cache-capacity", 0, "fitness-memoization cache entries per engine (0 = 4x population, negative = off)")
	mcacheCap   = flag.Int("machine-cache-capacity", 0, "machine-bucket memoization cache entries per engine (0 = default, negative = off)")
	kernelName  = flag.String("kernel", "typed", "per-machine simulation kernel: typed or scalar (bit-identical)")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

func main() {
	flag.Parse()

	prof, err := startProfiler(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	profSession = prof

	// The wall clock enters here, at the command layer; internal packages
	// only ever see the injected obs.Clock.
	tel, err := telemetry.Setup(telemetry.Config{
		TracePath:      *tracePath,
		MetricsAddr:    *metricsAddr,
		PhaseProfile:   *phaseProf,
		FlightRecorder: *flightRec,
		Clock:          func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		fatal(err)
	}
	telSession = tel
	if url := tel.MetricsURL(); url != "" {
		fmt.Println("serving metrics at", url)
	}
	if fr := tel.FlightRecorder(); fr != nil {
		stop := watchFlightSignal(fr, *flightDump)
		defer stop()
		defer func() {
			if r := recover(); r != nil {
				dumpFlight(fr, *flightDump, "panic")
				panic(r)
			}
		}()
	}
	dispatch(tel.Observer(), tel.PhaseTimer())
	if pt := tel.PhaseTimer(); pt != nil {
		fmt.Println("\nphase profile:")
		if err := pt.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := tel.Close(); err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		fmt.Println("wrote", *tracePath)
	}
	if err := prof.stop(); err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		fmt.Println("wrote", *cpuProfile)
	}
	if *memProfile != "" {
		fmt.Println("wrote", *memProfile)
	}
}

func dispatch(observer obs.Observer, phase *obs.PhaseTimer) {
	var kernel sched.Kernel
	switch *kernelName {
	case "typed":
		kernel = sched.KernelTyped
	case "scalar":
		kernel = sched.KernelScalar
	default:
		fatal(fmt.Errorf("unknown -kernel %q (want typed or scalar)", *kernelName))
	}
	baseCfg := experiments.RunConfig{
		PopulationSize:       *pop,
		MutationRate:         *mutation,
		Scale:                *scale,
		Seed:                 *seed,
		Workers:              *workersN,
		CacheCapacity:        *cacheCap,
		MachineCacheCapacity: *mcacheCap,
		Kernel:               kernel,
		Observer:             observer,
		PhaseTimer:           phase,
	}

	if *matrices {
		experiments.WriteMatrices(os.Stdout)
		return
	}
	if *convergence != 0 {
		ds, err := experiments.ByNumber(*convergence, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunConvergence(ds, baseCfg)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *baselines != 0 {
		ds, err := experiments.ByNumber(*baselines, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunBaselineComparison(ds, baseCfg)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *repeats != 0 {
		ds, err := experiments.ByNumber(*repeats, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunRepeats(ds, baseCfg, *runs)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *ablation != 0 {
		ds, err := experiments.ByNumber(*ablation, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunAblation(ds, baseCfg)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *hetero != 0 {
		res, err := experiments.RunHeterogeneityStudy(*hetero, *seed)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *onlineStudy != 0 {
		ds, err := experiments.ByNumber(*onlineStudy, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunOnlineStudy(ds, baseCfg)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *mutSweep != 0 {
		ds, err := experiments.ByNumber(*mutSweep, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunMutationSweep(ds, baseCfg, nil)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *wssaCmp != 0 {
		ds, err := experiments.ByNumber(*wssaCmp, *seed)
		if err != nil {
			fatal(err)
		}
		res, err := experiments.RunWSSAComparison(ds, baseCfg, nil)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		return
	}
	if *table != 0 {
		if err := printTable(*table); err != nil {
			fatal(err)
		}
		return
	}
	run := func(fig int) error {
		return runFigure(fig, baseCfg, *paperScale, *svgDir)
	}
	switch {
	case *all:
		for tn := 1; tn <= 3; tn++ {
			if err := printTable(tn); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for fig := 1; fig <= 6; fig++ {
			if err := run(fig); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figure != 0:
		if err := run(*figure); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printTable(n int) error {
	switch n {
	case 1:
		experiments.WriteTableI(os.Stdout)
	case 2:
		experiments.WriteTableII(os.Stdout)
	case 3:
		experiments.WriteTableIII(os.Stdout)
	default:
		return fmt.Errorf("no table %d (want 1-3)", n)
	}
	return nil
}

func runFigure(fig int, baseCfg experiments.RunConfig, paperScale bool, svgDir string) error {
	switch fig {
	case 1:
		experiments.WriteFigure1(os.Stdout)
		return nil
	case 2:
		experiments.WriteFigure2(os.Stdout)
		return nil
	case 3, 4, 6:
		dsNum := map[int]int{3: 1, 4: 2, 6: 3}[fig]
		ds, err := experiments.ByNumber(dsNum, baseCfg.Seed)
		if err != nil {
			return err
		}
		cfg := baseCfg
		if paperScale {
			cfg.Checkpoints = ds.PaperCheckpoints
		}
		fmt.Printf("Figure %d: Pareto fronts for %s (%s)\n", fig, ds.Name, ds.Description)
		res, err := experiments.RunParetoFigure(ds, cfg)
		if err != nil {
			return err
		}
		if err := res.WriteSeries(os.Stdout); err != nil {
			return err
		}
		// ASCII chart of the final checkpoint.
		chart, err := res.Chart(len(res.Checkpoints) - 1)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(chart.ASCII(76, 20))
		if svgDir != "" {
			for k := range res.Checkpoints {
				c, err := res.Chart(k)
				if err != nil {
					return err
				}
				name := filepath.Join(svgDir, fmt.Sprintf("figure%d_cp%d.svg", fig, res.Checkpoints[k]))
				if err := os.WriteFile(name, []byte(c.SVG(800, 600)), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", name)
			}
		}
		return nil
	case 5:
		ds, err := experiments.ByNumber(2, baseCfg.Seed)
		if err != nil {
			return err
		}
		cfg := baseCfg
		if paperScale {
			cfg.Checkpoints = ds.PaperCheckpoints
		}
		res, err := experiments.RunFigure5(ds, cfg)
		if err != nil {
			return err
		}
		res.WriteFigure5(os.Stdout)
		return nil
	default:
		return fmt.Errorf("no figure %d (want 1-6)", fig)
	}
}

// telSession lets fatal flush a partially written trace before exiting;
// profSession likewise salvages any profile collected so far.
var (
	telSession  *telemetry.Session
	profSession *profiler
)

func fatal(err error) {
	telSession.Close()
	profSession.stop()
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
