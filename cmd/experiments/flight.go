package main

import (
	"fmt"
	"os"

	"tradeoff/internal/obs"
)

// dumpFlight writes the flight recorder's retained window as trace
// JSONL: to path (truncating, so repeated dumps keep the latest window)
// when non-empty, to stderr otherwise. A short status line always goes
// to stderr so signal-triggered dumps are visible even when redirected.
func dumpFlight(fr *obs.FlightRecorder, path, reason string) {
	if fr == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: flight-recorder dump (%s): %d of %d observed event(s)\n",
		reason, fr.Len(), fr.TotalObserved())
	out := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: flight dump:", err)
			return
		}
		defer f.Close()
		out = f
	}
	if err := fr.Dump(out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: flight dump:", err)
		return
	}
	if path != "" {
		fmt.Fprintln(os.Stderr, "experiments: flight dump written to", path)
	}
}
