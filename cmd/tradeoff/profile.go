package main

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// profiler writes optional CPU and heap profiles. Profiling lives at
// the command layer, like the wall clock: internal packages stay free
// of files and timers, and a run without the flags pays nothing.
type profiler struct {
	cpu  *os.File
	heap string
}

// startProfiler begins CPU profiling if cpuPath is non-empty and
// remembers heapPath for a heap snapshot at stop. Either path may be
// empty; a profiler with both empty is a no-op.
func startProfiler(cpuPath, heapPath string) (*profiler, error) {
	p := &profiler{heap: heapPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpu = f
	}
	return p, nil
}

// stop ends CPU profiling and writes the heap profile, once; later
// calls (and calls on a nil profiler) are no-ops, so the error path
// can stop the same profiler the success path does.
func (p *profiler) stop() error {
	if p == nil {
		return nil
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		err := p.cpu.Close()
		p.cpu = nil
		if err != nil {
			return err
		}
	}
	if p.heap != "" {
		path := p.heap
		p.heap = ""
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		runtime.GC() // settle transients so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
