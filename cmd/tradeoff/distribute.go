// Distributed island mode: -distribute N forks N copies of this binary
// in worker mode (-island-worker W), each owning a contiguous shard of
// the island ring and stepping on the same asynchronous logical-clock
// schedule the in-process model uses. Boundary migrations travel over
// per-worker socketpairs as fixed-width binary frames (internal/dist),
// so the distributed run is bit-identical to -islands N -async in one
// process: same fronts, same migration-event sequence, same snapshots.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"tradeoff/internal/core"
	"tradeoff/internal/dist"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/telemetry"
)

// serveIslandWorker runs the process as distributed island worker
// `worker`: it rebuilds the same evaluator and island configuration the
// parent derived from the shared command line (both processes parse the
// identical argv, so the shard is reproducible without shipping it),
// then serves its shard over the socket inherited on fd dist.WorkerFD
// until the parent sends Exit.
func serveIslandWorker(fw *core.Framework, opts core.Options, worker, workers int, tel *telemetry.Session) error {
	if worker >= workers {
		return fmt.Errorf("-island-worker %d needs -distribute > %d", worker, worker)
	}
	cfg, err := fw.IslandConfig(opts)
	if err != nil {
		return err
	}
	// ServeWorker reads migration geometry straight off the config, so
	// hand it the same normalized form the parent's coordinator uses.
	cfg, err = cfg.Normalized()
	if err != nil {
		return err
	}
	sock := dist.WorkerSocket()
	if sock == nil {
		return fmt.Errorf("distributed islands need a unix platform (no inherited socket on fd %d)", dist.WorkerFD)
	}
	return dist.ServeWorker(sock, dist.WorkerEnv{
		Worker:   worker,
		Workers:  workers,
		Eval:     fw.Evaluator(),
		Config:   cfg,
		Seed:     opts.RandomSeed,
		Observer: tel.Observer(),
		Clock:    func() int64 { return time.Now().UnixNano() },
	})
}

// runDistributed forks `workers` copies of this binary in worker mode
// (re-execing os.Args plus -island-worker), drives them through the
// wire coordinator, and assembles the same Result the in-process
// island model produces.
func runDistributed(fw *core.Framework, opts core.Options, workers int, tel *telemetry.Session) (*core.Result, error) {
	if !opts.AsyncIslands {
		return nil, fmt.Errorf("-distribute needs -async: worker shards step on the asynchronous logical-clock schedule")
	}
	cfg, err := fw.IslandConfig(opts)
	if err != nil {
		return nil, err
	}
	ncfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if ncfg.Islands < workers {
		return nil, fmt.Errorf("-distribute %d needs at least that many islands (have -islands %d)", workers, ncfg.Islands)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	board := tel.DistBoard(workers)
	procs, err := dist.StartWorkers(workers, board.AddBytes, func(w int) *exec.Cmd {
		args := append(append([]string{}, os.Args[1:]...), "-island-worker", strconv.Itoa(w))
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr // the parent owns stdout; worker prints go to stderr
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		return nil, err
	}
	kill := func() {
		for _, p := range procs {
			p.Conn.Close()
			p.Kill()
			p.Wait() //nolint:errcheck // best-effort teardown after a failure
		}
	}
	conns := make([]*dist.Conn, len(procs))
	for i, p := range procs {
		conns[i] = p.Conn
	}
	coord, err := dist.NewCoordinator(conns, dist.CoordinatorConfig{
		Islands:           ncfg.Islands,
		MigrationInterval: ncfg.MigrationInterval,
		Migrants:          ncfg.Migrants,
		PopulationSize:    ncfg.Engine.PopulationSize,
		NumMachines:       fw.Evaluator().NumMachines(),
		Observer:          opts.Observer,
		Board:             board,
	})
	if err != nil {
		kill()
		return nil, err
	}
	if opts.Resume != nil {
		if err := coord.Restore(opts.Resume); err != nil {
			kill()
			return nil, err
		}
	}
	if opts.Generations < coord.Generation() {
		kill()
		return nil, fmt.Errorf("-generations %d is behind the resumed generation %d", opts.Generations, coord.Generation())
	}
	if err := coord.Run(opts.Generations - coord.Generation()); err != nil {
		kill()
		return nil, err
	}
	union, err := coord.Front()
	if err != nil {
		kill()
		return nil, err
	}
	var snap *nsga2.IslandsSnapshot
	if opts.CaptureSnapshot {
		if snap, err = coord.Snapshot(); err != nil {
			kill()
			return nil, err
		}
	}
	if err := coord.Close(); err != nil {
		kill()
		return nil, err
	}
	for w, p := range procs {
		if err := p.Wait(); err != nil {
			return nil, fmt.Errorf("worker %d: %w", w, err)
		}
	}
	res, err := fw.FinishFront(nsga2.MergeFronts(moea.UtilityEnergySpace(), union), opts)
	if err != nil {
		return nil, err
	}
	res.FinalSnapshot = snap
	return res, nil
}
