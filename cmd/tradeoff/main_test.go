package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/analysis"
	"tradeoff/internal/core"
	"tradeoff/internal/heuristics"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("min-energy, max-utility")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != heuristics.MinEnergy || seeds[1] != heuristics.MaxUtility {
		t.Fatalf("parseSeeds = %v", seeds)
	}
	if s, err := parseSeeds(""); err != nil || s != nil {
		t.Fatal("empty seed list should be nil")
	}
	if s, err := parseSeeds(" , "); err != nil || s != nil {
		t.Fatal("blank entries should be skipped")
	}
	if _, err := parseSeeds("bogus"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	res := &core.Result{Front: []analysis.FrontPoint{
		{Utility: 10, Energy: 2e6},
		{Utility: 20, Energy: 3e6},
	}}
	path := filepath.Join(t.TempDir(), "front.csv")
	if err := writeCSV(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "utility,energy_joules") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.000000") { // energy in MJ
		t.Fatalf("row = %q", lines[1])
	}
}

func TestBuildFrameworkDatasets(t *testing.T) {
	fw, name, err := buildFramework(1, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "dataset1" || fw.Trace().NumTasks() != 250 {
		t.Fatalf("dataset1: name=%q tasks=%d", name, fw.Trace().NumTasks())
	}
	// Task-count override.
	fw2, _, err := buildFramework(1, "", 42, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fw2.Trace().NumTasks() != 42 {
		t.Fatalf("override tasks = %d", fw2.Trace().NumTasks())
	}
	if _, _, err := buildFramework(9, "", 0, 0, 1); err == nil {
		t.Fatal("bad dataset accepted")
	}
	if _, _, err := buildFramework(1, "/nonexistent.json", 0, 0, 1); err == nil {
		t.Fatal("missing system file accepted")
	}
}
