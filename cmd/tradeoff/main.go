// Command tradeoff runs the analysis framework end to end: build (or
// load) a system, simulate a workload trace, evolve seeded NSGA-II
// populations, and report the utility/energy Pareto front with its
// maximum utility-per-energy region.
//
// Usage:
//
//	tradeoff [-dataset 1|2|3] [-generations 2000] [-pop 100] \
//	         [-seeds min-energy,max-utility] [-seed 1] \
//	         [-csv front.csv] [-svg front.svg] [-system system.json] \
//	         [-trace run.jsonl] [-metrics-addr :9090] \
//	         [-cache-capacity 400] [-cpuprofile cpu.pprof]
//
// -trace streams one JSON object per generation (front points,
// convergence indicators, evaluation counters) to a file; -metrics-addr
// serves the run's metric registry as Prometheus text on /metrics and
// JSON on /metrics.json. Neither changes the optimization result.
//
// -phase-profile times the engine's generation phases (selection,
// variation, cache probe/insert, evaluation, sort, archive, migration)
// and prints a per-phase summary after the run; with -trace the
// per-generation phase breakdown lands in each generation record.
// -flight-recorder N retains the last N telemetry events in memory;
// SIGUSR1 (and a run-aborting panic) dumps them as trace JSONL to the
// -flight-dump path (stderr when unset). None of these change results.
//
// -checkpoints records intermediate fronts at the given generation
// counts (single population only) and -upe-tolerance widens or narrows
// the reported utility-per-energy region.
//
// -islands runs the island model with ring migration every
// -migration-interval generations; -async switches its Run loop to
// asynchronous steady-state stepping (bit-identical results).
// -archive bounds the reported front to at most N ε-dominance
// representatives, with box widths from -archive-eps or derived from
// the front's own extent — essential at 10^5+ tasks, where raw fronts
// hold thousands of near-duplicate points.
//
// -cache-capacity bounds the fitness-memoization cache (0 picks the
// default of 4x the population, negative disables it) and
// -machine-cache-capacity bounds the machine-bucket memoization cache
// beneath it; -kernel selects the typed (run-length compressed) or
// scalar per-machine simulation kernel, and -evaluation the delta
// (incremental) or full offspring evaluation strategy. Every setting
// yields bit-identical fronts. -cpuprofile and -memprofile write pprof
// profiles of the run.
//
// With -system the environment is loaded from a JSON file produced by
// the datagen command instead of a built-in data set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tradeoff/internal/core"
	"tradeoff/internal/experiments"
	"tradeoff/internal/hcs"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/plot"
	"tradeoff/internal/report"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/telemetry"
	"tradeoff/internal/workload"
)

func main() {
	var (
		dataset     = flag.Int("dataset", 1, "built-in data set 1-3")
		systemFile  = flag.String("system", "", "load system JSON instead of a built-in data set")
		tasks       = flag.Int("tasks", 0, "override task count (with -system or a data set)")
		window      = flag.Float64("window", 0, "override trace window in seconds")
		generations = flag.Int("generations", 2000, "NSGA-II generations")
		pop         = flag.Int("pop", 100, "population size")
		mutation    = flag.Float64("mutation", 0.1, "mutation probability")
		checkpoints = flag.String("checkpoints", "", "comma-separated generation counts to record intermediate fronts at (single population only)")
		upeTol      = flag.Float64("upe-tolerance", 0.05, "relative tolerance band for the max utility-per-energy region")
		seedsFlag   = flag.String("seeds", "min-energy,min-min,max-utility,max-utility-per-energy", "comma-separated seeding heuristics (empty = random)")
		seed        = flag.Uint64("seed", 1, "random seed")
		csvPath     = flag.String("csv", "", "write the front as CSV")
		svgPath     = flag.String("svg", "", "write the front as SVG")
		workers     = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
		idleWatts   = flag.Float64("idlewatts", 0, "idle power draw per machine in watts (0 = paper's execution-only energy model)")
		dropBelow   = flag.Float64("drop", -1, "post-process: drop tasks earning <= this utility (negative = off)")
		stats       = flag.Bool("stats", false, "print trace statistics before optimizing")
		saveTrace   = flag.String("savetrace", "", "write the generated trace as JSON and continue")
		loadTrace   = flag.String("loadtrace", "", "load the trace from JSON instead of generating one")
		reportPath  = flag.String("report", "", "write a Markdown analysis report")
		ganttPath   = flag.String("gantt", "", "write the efficient-region schedule as Gantt CSV")
		traceCSV    = flag.String("tracecsv", "", "import the trace from a CSV (arrival,task_type[,priority,horizon])")
		islands     = flag.Int("islands", 0, "run the island model with this many populations (0 = single population)")
		migInterval = flag.Int("migration-interval", 25, "generations between island ring migrations (with -islands)")
		asyncFlag   = flag.Bool("async", false, "asynchronous island stepping (with -islands; bit-identical results)")
		distribute  = flag.Int("distribute", 0, "run the islands across this many worker processes (with -islands and -async; bit-identical results)")
		islandWork  = flag.Int("island-worker", -1, "internal: serve as distributed island worker N over the inherited socket (spawned by -distribute)")
		snapshotIn  = flag.String("snapshot-in", "", "resume an island run from this snapshot JSON (with -islands)")
		snapshotOut = flag.String("snapshot-out", "", "write the island run's final state to this snapshot JSON (with -islands)")
		archiveSize = flag.Int("archive", 0, "bound the reported front to at most this many ε-dominance representatives (0 = full front)")
		archiveEps  = flag.String("archive-eps", "", "comma-separated ε widths utility,energy for -archive (empty = derived from the front extent)")
		archSpill   = flag.Int("archive-spill", 0, "with -archive-eps: bound archive memory to this many points, spilling sorted runs to disk (0 = in-memory)")
		machines    = flag.Bool("machines", false, "print the per-machine breakdown of the efficient-region allocation")
		tracePath   = flag.String("trace", "", "stream per-generation JSONL telemetry to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-text metrics on this address (e.g. :9090)")
		phaseProf   = flag.Bool("phase-profile", false, "time the engine's generation phases and print a summary after the run")
		flightRec   = flag.Int("flight-recorder", 0, "retain the last N telemetry events for SIGUSR1/panic dumps (0 = off)")
		flightDump  = flag.String("flight-dump", "", "write flight-recorder dumps to this file (default stderr)")
		cacheCap    = flag.Int("cache-capacity", 0, "fitness-memoization cache entries (0 = 4x population, negative = off)")
		cacheVerify = flag.Bool("cache-verify", false, "re-simulate every cache hit and abort on divergence (debug)")
		mcacheCap   = flag.Int("machine-cache-capacity", 0, "machine-bucket memoization cache entries (0 = 128x population, negative = off)")
		mcacheVer   = flag.Bool("machine-cache-verify", false, "re-simulate every machine-cache hit and abort on divergence (debug)")
		kernelName  = flag.String("kernel", "typed", "per-machine simulation kernel: typed or scalar (bit-identical)")
		evalName    = flag.String("evaluation", "delta", "offspring evaluation strategy: delta or full (bit-identical)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var kernel sched.Kernel
	switch *kernelName {
	case "typed":
		kernel = sched.KernelTyped
	case "scalar":
		kernel = sched.KernelScalar
	default:
		fatal(fmt.Errorf("unknown -kernel %q (want typed or scalar)", *kernelName))
	}
	var evaluation nsga2.Evaluation
	switch *evalName {
	case "delta":
		evaluation = nsga2.DeltaEvaluation
	case "full":
		evaluation = nsga2.FullEvaluation
	default:
		fatal(fmt.Errorf("unknown -evaluation %q (want delta or full)", *evalName))
	}

	cpuProf, memProf := *cpuProfile, *memProfile
	if *islandWork >= 0 {
		// Worker processes profile into their own files next to the
		// parent's instead of clobbering them.
		if cpuProf != "" {
			cpuProf = fmt.Sprintf("%s.w%d", cpuProf, *islandWork)
		}
		if memProf != "" {
			memProf = fmt.Sprintf("%s.w%d", memProf, *islandWork)
		}
	}
	prof, err := startProfiler(cpuProf, memProf)
	if err != nil {
		fatal(err)
	}
	profSession = prof

	// The wall clock enters here, at the command layer; internal packages
	// only ever see the injected obs.Clock.
	traceOut := *tracePath
	metricsOut := *metricsAddr
	if *islandWork >= 0 {
		// Worker processes stream their own trace next to the parent's;
		// the single metrics endpoint stays with the parent.
		if traceOut != "" {
			traceOut = fmt.Sprintf("%s.w%d", traceOut, *islandWork)
		}
		metricsOut = ""
	}
	tel, err := telemetry.Setup(telemetry.Config{
		TracePath:      traceOut,
		MetricsAddr:    metricsOut,
		PhaseProfile:   *phaseProf,
		FlightRecorder: *flightRec,
		Clock:          func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		fatal(err)
	}
	telSession = tel
	if url := tel.MetricsURL(); url != "" {
		fmt.Println("serving metrics at", url)
	}
	if fr := tel.FlightRecorder(); fr != nil {
		stop := watchFlightSignal(fr, *flightDump)
		defer stop()
		defer func() {
			if r := recover(); r != nil {
				dumpFlight(fr, *flightDump, "panic")
				panic(r)
			}
		}()
	}

	fw, name, err := buildFramework(*dataset, *systemFile, *tasks, *window, *seed)
	if err != nil {
		fatal(err)
	}
	if *traceCSV != "" {
		f, err := os.Open(*traceCSV)
		if err != nil {
			fatal(err)
		}
		tr, err := workload.ImportCSV(f, fw.System(), *window, nil, rng.NewStream(*seed, 11))
		f.Close()
		if err != nil {
			fatal(err)
		}
		fw, err = core.New(fw.System(), tr)
		if err != nil {
			fatal(err)
		}
		name += " (csv trace: " + *traceCSV + ")"
	}
	if *loadTrace != "" {
		raw, err := os.ReadFile(*loadTrace)
		if err != nil {
			fatal(err)
		}
		tr, err := workload.DecodeTrace(raw, fw.System())
		if err != nil {
			fatal(err)
		}
		fw, err = core.New(fw.System(), tr)
		if err != nil {
			fatal(err)
		}
		name += " (trace: " + *loadTrace + ")"
	}
	if *saveTrace != "" {
		raw, err := workload.EncodeTrace(fw.Trace())
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*saveTrace, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveTrace)
	}
	if *idleWatts > 0 {
		watts := make([]float64, fw.System().NumMachineTypes())
		for i := range watts {
			watts[i] = *idleWatts
		}
		if err := fw.Evaluator().SetIdlePower(watts); err != nil {
			fatal(err)
		}
	}
	if *stats {
		st, err := workload.Stats(fw.Trace(), fw.System())
		if err != nil {
			fatal(err)
		}
		st.Write(os.Stdout, fw.System())
		fmt.Println()
	}
	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fatal(err)
	}
	eps, err := parseEpsilon(*archiveEps)
	if err != nil {
		fatal(err)
	}
	cps, err := parseCheckpoints(*checkpoints)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Generations:       *generations,
		PopulationSize:    *pop,
		MutationRate:      *mutation,
		Seeds:             seeds,
		Checkpoints:       cps,
		RandomSeed:        *seed,
		Workers:           *workers,
		UPETolerance:      *upeTol,
		Islands:           *islands,
		MigrationInterval: *migInterval,
		AsyncIslands:      *asyncFlag,
		ArchiveSize:       *archiveSize,
		ArchiveEpsilon:    eps,
		CacheCapacity:     *cacheCap,
		CacheVerify:       *cacheVerify,
		Observer:          tel.Observer(),
		PhaseTimer:        tel.PhaseTimer(),
		IslandBoard:       tel.IslandBoard(*islands),

		MachineCacheCapacity: *mcacheCap,
		MachineCacheVerify:   *mcacheVer,
		Kernel:               kernel,
		Evaluation:           evaluation,

		ArchiveSpillBudget: *archSpill,
	}
	if *islandWork >= 0 {
		// Distributed worker mode: serve our island shard over the
		// inherited socket and exit. The parent owns stdout and all
		// result reporting; the worker only streams its own trace.
		if err := serveIslandWorker(fw, opts, *islandWork, *distribute, tel); err != nil {
			fatal(err)
		}
		if err := tel.Close(); err != nil {
			fatal(err)
		}
		if err := prof.stop(); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("analyzing %s: %d tasks over %.0f s on %d machines\n",
		name, fw.Trace().NumTasks(), fw.Trace().Window, fw.System().NumMachines())
	if *snapshotIn != "" {
		raw, err := os.ReadFile(*snapshotIn)
		if err != nil {
			fatal(err)
		}
		snap, err := nsga2.DecodeIslandsSnapshot(raw)
		if err != nil {
			fatal(fmt.Errorf("bad -snapshot-in %s: %w", *snapshotIn, err))
		}
		opts.Resume = snap
		fmt.Printf("resuming from %s at generation %d\n", *snapshotIn, snap.Generation)
	}
	opts.CaptureSnapshot = *snapshotOut != ""
	var res *core.Result
	if *distribute > 0 {
		res, err = runDistributed(fw, opts, *distribute, tel)
	} else {
		res, err = fw.Optimize(opts)
	}
	if err != nil {
		fatal(err)
	}
	if *snapshotOut != "" {
		raw, err := nsga2.EncodeIslandsSnapshot(res.FinalSnapshot)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapshotOut, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *snapshotOut)
	}

	for _, cp := range res.Checkpoints {
		fmt.Printf("checkpoint at generation %d: %d front points\n", cp.Generation, len(cp.Front))
	}

	fmt.Printf("\nPareto front after %d generations (%d solutions):\n", res.Generations, len(res.Front))
	fmt.Printf("  %-14s %-14s %s\n", "energy (MJ)", "utility", "utility/MJ")
	for i, p := range res.Front {
		marker := ""
		switch {
		case i == res.Region.PeakIndex:
			marker = "   <- max utility-per-energy"
		case i >= res.Region.Lo && i <= res.Region.Hi:
			marker = "   <- efficient region"
		}
		fmt.Printf("  %-14.4f %-14.1f %.4f%s\n", p.Energy/1e6, p.Utility, p.UPE()*1e6, marker)
	}
	fmt.Printf("\nhypervolume: %.4g; efficient region: indices [%d,%d]\n",
		res.Hypervolume, res.Region.Lo, res.Region.Hi)

	if *dropBelow >= 0 {
		// The task-dropping extension, applied to the peak allocation.
		alloc := res.Allocations[res.Region.PeakIndex]
		before, err := fw.Evaluate(alloc)
		if err != nil {
			fatal(err)
		}
		droppedAlloc, after := sched.DropNegligible(fw.Evaluator(), alloc, *dropBelow)
		dropped := 0
		for _, m := range droppedAlloc.Machine {
			if m == sched.Dropped {
				dropped++
			}
		}
		fmt.Printf("\ntask dropping (threshold %.2f) on the peak allocation: %d tasks dropped\n", *dropBelow, dropped)
		fmt.Printf("  before: %.4f MJ, %.1f utility\n", before.Energy/1e6, before.Utility)
		fmt.Printf("  after:  %.4f MJ, %.1f utility\n", after.Energy/1e6, after.Utility)
	}

	if *machines {
		fmt.Println("\nper-machine breakdown of the efficient-region allocation:")
		if err := fw.Evaluator().WriteReport(os.Stdout, res.Allocations[res.Region.PeakIndex]); err != nil {
			fatal(err)
		}
	}
	if *ganttPath != "" {
		f, err := os.Create(*ganttPath)
		if err != nil {
			fatal(err)
		}
		if err := fw.Evaluator().WriteGanttCSV(f, res.Allocations[res.Region.PeakIndex]); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *ganttPath)
	}
	if *reportPath != "" {
		doc, err := report.Render(fw, res, report.Options{
			Title:       "Utility/Energy Trade-off Analysis: " + name,
			GeneratedAt: time.Now(),
		})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *reportPath)
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvPath)
	}
	if *svgPath != "" {
		chart := &plot.Chart{
			Title:  "utility vs energy trade-off: " + name,
			XLabel: "total energy consumed (MJ)",
			YLabel: "total utility earned",
			Series: []plot.Series{{Name: "pareto front"}},
		}
		for _, p := range res.Front {
			chart.Series[0].Points = append(chart.Series[0].Points, plot.Point{X: p.Energy / 1e6, Y: p.Utility})
		}
		if err := os.WriteFile(*svgPath, []byte(chart.SVG(800, 600)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgPath)
	}
	if pt := tel.PhaseTimer(); pt != nil {
		fmt.Println("\nphase profile:")
		if err := pt.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := tel.Close(); err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		fmt.Println("wrote", *tracePath)
	}
	if err := prof.stop(); err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		fmt.Println("wrote", *cpuProfile)
	}
	if *memProfile != "" {
		fmt.Println("wrote", *memProfile)
	}
}

func buildFramework(dataset int, systemFile string, tasks int, window float64, seed uint64) (*core.Framework, string, error) {
	if systemFile != "" {
		raw, err := os.ReadFile(systemFile)
		if err != nil {
			return nil, "", err
		}
		var sys hcs.System
		if err := json.Unmarshal(raw, &sys); err != nil {
			return nil, "", err
		}
		if tasks == 0 {
			tasks = 1000
		}
		if window == 0 {
			window = 900
		}
		tr, err := workload.Generate(&sys, workload.GenConfig{NumTasks: tasks, Window: window}, rng.NewStream(seed, 10))
		if err != nil {
			return nil, "", err
		}
		fw, err := core.New(&sys, tr)
		return fw, systemFile, err
	}
	ds, err := experiments.ByNumber(dataset, seed)
	if err != nil {
		return nil, "", err
	}
	if tasks != 0 || window != 0 {
		n := ds.Trace.NumTasks()
		if tasks != 0 {
			n = tasks
		}
		w := ds.Trace.Window
		if window != 0 {
			w = window
		}
		tr, err := workload.Generate(ds.System, workload.GenConfig{NumTasks: n, Window: w}, rng.NewStream(seed, 10))
		if err != nil {
			return nil, "", err
		}
		fw, err := core.New(ds.System, tr)
		return fw, ds.Name, err
	}
	fw, err := core.New(ds.System, ds.Trace)
	return fw, ds.Name, err
}

func parseCheckpoints(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -checkpoints %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseEpsilon(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -archive-eps %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSeeds(s string) ([]heuristics.Heuristic, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	byName := map[string]heuristics.Heuristic{}
	for _, h := range heuristics.All {
		byName[h.String()] = h
	}
	var out []heuristics.Heuristic
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		h, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown seeding heuristic %q (have: min-energy, max-utility, max-utility-per-energy, min-min)", name)
		}
		out = append(out, h)
	}
	return out, nil
}

func writeCSV(path string, res *core.Result) error {
	var b strings.Builder
	b.WriteString("utility,energy_joules,energy_mj,upe_per_mj\n")
	for _, p := range res.Front {
		fmt.Fprintf(&b, "%.6f,%.6f,%.6f,%.6f\n", p.Utility, p.Energy, p.Energy/1e6, p.UPE()*1e6)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// telSession lets fatal flush a partially written trace before exiting;
// profSession likewise salvages any profile collected so far.
var (
	telSession  *telemetry.Session
	profSession *profiler
)

func fatal(err error) {
	telSession.Close()
	profSession.stop()
	fmt.Fprintln(os.Stderr, "tradeoff:", err)
	os.Exit(1)
}
