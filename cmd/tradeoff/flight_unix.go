//go:build unix

package main

import (
	"os"
	"os/signal"
	"syscall"

	"tradeoff/internal/obs"
)

// watchFlightSignal dumps the flight recorder's window on every SIGUSR1
// until the returned stop function is called. Signal handling lives
// here at the command layer: internal/* stays free of ambient process
// state.
func watchFlightSignal(fr *obs.FlightRecorder, path string) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				dumpFlight(fr, path, "SIGUSR1")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
