//go:build !unix

package main

import "tradeoff/internal/obs"

// watchFlightSignal is a no-op on platforms without SIGUSR1; panic-time
// dumps still work.
func watchFlightSignal(*obs.FlightRecorder, string) func() {
	return func() {}
}
