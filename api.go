// Package tradeoff is an analysis framework for investigating the
// trade-offs between system performance (total utility earned) and energy
// consumption in a heterogeneous computing environment, reproducing
// Friese et al., "An Analysis Framework for Investigating the Trade-offs
// Between System Performance and Energy Consumption in a Heterogeneous
// Computing Environment" (IPDPSW 2013).
//
// The model: a suite of heterogeneous machines characterized by ETC
// (estimated time to compute) and EPC (estimated power consumption)
// matrices executes a trace of tasks, each carrying an arrival time and a
// monotonically decreasing time-utility function. A resource allocation
// maps every task to a machine and fixes a global scheduling order.
// The framework evolves populations of allocations with NSGA-II —
// optionally seeded with greedy heuristics — into Pareto fronts of
// (utility, energy), and locates the region where utility earned per
// energy spent is maximized.
//
// Quick start:
//
//	sys := tradeoff.RealSystem()
//	trace, _ := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 250, Window: 900}, 1)
//	fw, _ := tradeoff.NewFramework(sys, trace)
//	res, _ := fw.Optimize(tradeoff.Options{Generations: 1000, Seeds: []tradeoff.Heuristic{tradeoff.MinEnergy}})
//	for _, p := range res.Front {
//	    fmt.Printf("%.2f MJ -> %.1f utility\n", p.Energy/1e6, p.Utility)
//	}
//
// Subsystems re-exported here live in internal packages: hcs (system
// model), workload (traces and TUF policies), sched (allocation
// simulator), nsga2 (the genetic algorithm), heuristics (seeds), datagen
// (the Gram-Charlier synthetic data pipeline), analysis (front
// post-processing), and dvfs (the DVFS future-work extension).
package tradeoff

import (
	"io"

	"tradeoff/internal/analysis"
	"tradeoff/internal/core"
	"tradeoff/internal/data"
	"tradeoff/internal/datagen"
	"tradeoff/internal/dvfs"
	"tradeoff/internal/hcs"
	"tradeoff/internal/heuristics"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/utility"
	"tradeoff/internal/workload"
)

// System model.
type (
	// System is a heterogeneous computing environment: machine types,
	// task types, ETC/EPC matrices, and machine instances.
	System = hcs.System
	// Machine is a machine instance.
	Machine = hcs.Machine
	// MachineType describes a machine type.
	MachineType = hcs.MachineType
	// TaskType describes a task type.
	TaskType = hcs.TaskType
	// Matrix is a task-type × machine-type value matrix (ETC/EPC).
	Matrix = hcs.Matrix
	// Category distinguishes general-purpose from special-purpose types.
	Category = hcs.Category
)

// Categories.
const (
	GeneralPurpose = hcs.GeneralPurpose
	SpecialPurpose = hcs.SpecialPurpose
)

// Workload.
type (
	// Trace is a recorded workload: tasks with arrival times and TUFs.
	Trace = workload.Trace
	// Task is one task instance.
	Task = workload.Task
	// TraceConfig configures GenerateTrace.
	TraceConfig = workload.GenConfig
	// UtilityFunction is a monotonically decreasing time-utility function.
	UtilityFunction = utility.Function
)

// Arrival processes for TraceConfig.
const (
	UniformArrivals = workload.UniformArrivals
	PoissonArrivals = workload.PoissonArrivals
)

// Allocation and evaluation.
type (
	// Allocation maps tasks to machines with a global scheduling order.
	Allocation = sched.Allocation
	// Evaluation is the simulated outcome of an allocation.
	Evaluation = sched.Evaluation
	// Evaluator simulates allocations for one system + trace.
	Evaluator = sched.Evaluator
)

// Framework API.
type (
	// Framework is the analysis framework over one system + trace.
	Framework = core.Framework
	// Options parameterizes Framework.Optimize.
	Options = core.Options
	// Result is an optimization outcome: front, allocations, UPE region.
	Result = core.Result
	// FrontPoint is one (utility, energy) point.
	FrontPoint = analysis.FrontPoint
	// UPERegion is the maximum utility-per-energy region of a front.
	UPERegion = analysis.UPERegion
	// Heuristic names a greedy seeding strategy.
	Heuristic = heuristics.Heuristic
)

// Seeding heuristics (§V-B).
const (
	MinEnergy           = heuristics.MinEnergy
	MaxUtility          = heuristics.MaxUtility
	MaxUtilityPerEnergy = heuristics.MaxUtilityPerEnergy
	MinMin              = heuristics.MinMin
)

// DVFS extension.
type (
	// DVFSProfile describes per-machine P-states.
	DVFSProfile = dvfs.Profile
	// DVFSEvaluator evaluates allocations with per-task P-states.
	DVFSEvaluator = dvfs.Evaluator
)

// NewFramework validates a system and trace and returns a Framework.
func NewFramework(sys *System, trace *Trace) (*Framework, error) {
	return core.New(sys, trace)
}

// RealSystem returns the embedded 9-machine × 5-task benchmark
// environment (the paper's data set 1 substrate).
func RealSystem() *System { return data.RealSystem() }

// EnlargeConfig configures EnlargeSystem.
type EnlargeConfig = datagen.Config

// DefaultEnlargeConfig returns the paper's data-set-2/3 configuration:
// 25 synthetic task types, 4 special-purpose machine types at 10×, and
// the Table III machine counts.
func DefaultEnlargeConfig() EnlargeConfig { return datagen.Default() }

// EnlargeSystem applies the paper's §III-D2 Gram-Charlier pipeline to a
// base system, preserving its heterogeneity characteristics. The result
// is deterministic in seed.
func EnlargeSystem(base *System, cfg EnlargeConfig, seed uint64) (*System, error) {
	return datagen.Enlarge(base, cfg, rng.New(seed))
}

// GenerateTrace produces a workload trace for a system, deterministically
// in seed.
func GenerateTrace(sys *System, cfg TraceConfig, seed uint64) (*Trace, error) {
	return workload.Generate(sys, cfg, rng.New(seed))
}

// NewEvaluator exposes the schedule simulator directly for callers that
// want to evaluate hand-built allocations without a Framework.
func NewEvaluator(sys *System, trace *Trace) (*Evaluator, error) {
	return sched.NewEvaluator(sys, trace)
}

// BuildSeed constructs one greedy seeding allocation on an evaluator.
func BuildSeed(h Heuristic, e *Evaluator) (*Allocation, error) { return h.Build(e) }

// DefaultDVFSProfile returns a four-state DVFS profile (base frequency
// plus three throttled states, cubic dynamic power).
func DefaultDVFSProfile() DVFSProfile { return dvfs.DefaultProfile() }

// NewDVFSEvaluator wraps an evaluator with a DVFS profile, enabling
// per-task P-state evaluation and front extension (the paper's
// future-work item).
func NewDVFSEvaluator(e *Evaluator, p DVFSProfile) (*DVFSEvaluator, error) {
	return dvfs.NewEvaluator(e, p)
}

// AnalyzeUPE locates the maximum utility-per-energy region of a front
// (Fig. 5); tolerance is the relative UPE band (e.g. 0.05).
func AnalyzeUPE(front []FrontPoint, tolerance float64) (UPERegion, error) {
	return analysis.AnalyzeUPE(front, tolerance)
}

// Baseline names a classic single-solution mapping heuristic (Braun et
// al.) usable as a comparison point.
type Baseline = heuristics.Baseline

// Classic baselines.
const (
	OLB       = heuristics.OLB
	MCT       = heuristics.MCT
	MET       = heuristics.MET
	MaxMin    = heuristics.MaxMin
	Sufferage = heuristics.Sufferage
)

// BuildBaseline constructs one classic baseline allocation.
func BuildBaseline(b Baseline, e *Evaluator) *Allocation { return b.Build(e) }

// DropNegligible applies the task-dropping extension: tasks earning at
// most minUtility are dropped (saving their energy) until a fixed point.
func DropNegligible(e *Evaluator, a *Allocation, minUtility float64) (*Allocation, Evaluation) {
	return sched.DropNegligible(e, a, minUtility)
}

// TraceStats summarizes a trace against a system.
type TraceStats = workload.TraceStats

// MeasureTrace computes trace statistics (arrival rate, offered load,
// utility upper bound).
func MeasureTrace(tr *Trace, sys *System) (TraceStats, error) {
	return workload.Stats(tr, sys)
}

// BestUnderBudget returns the index of the highest-utility front point
// within an energy budget, or -1 when unattainable.
func BestUnderBudget(front []FrontPoint, budget float64) int {
	return analysis.BestUnderBudget(front, budget)
}

// CheapestAtUtility returns the index of the lowest-energy front point
// earning at least the target utility, or -1 when unattainable.
func CheapestAtUtility(front []FrontPoint, target float64) int {
	return analysis.CheapestAtUtility(front, target)
}

// SystemBuilder assembles a custom System incrementally.
type SystemBuilder = hcs.Builder

// NewSystemBuilder returns an empty system builder.
func NewSystemBuilder() *SystemBuilder { return hcs.NewBuilder() }

// Observability. Attach an Observer via Options.Observer to receive
// per-generation telemetry (front points, convergence indicators,
// delta-evaluation counters) and island migration events. Observation
// never consumes randomness and never changes results bit-for-bit.
type (
	// Observer receives telemetry events from an optimization run.
	Observer = obs.Observer
	// GenerationStats is the per-generation telemetry payload. Slices in
	// the event are borrowed and valid only during the callback.
	GenerationStats = obs.GenerationStats
	// MigrationEvent describes one island migration edge.
	MigrationEvent = obs.MigrationEvent
	// RunEvent summarizes one completed experiment run.
	RunEvent = obs.RunEvent
	// MetricsRegistry is a typed metric registry with Prometheus-text and
	// JSON exposition.
	MetricsRegistry = obs.Registry
	// TraceWriter streams telemetry events as JSONL.
	TraceWriter = obs.TraceWriter
	// Clock supplies nanosecond timestamps to a TraceWriter; inject a
	// fixed clock for byte-identical traces.
	Clock = obs.Clock
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsObserver registers the standard instrument set on r and
// returns the observer that feeds it.
func NewMetricsObserver(r *MetricsRegistry) Observer { return obs.NewMetrics(r) }

// NewTraceWriter returns an observer that appends one JSON object per
// telemetry event to w, timestamped by clock (nil stamps 0).
func NewTraceWriter(w io.Writer, clock Clock) *TraceWriter { return obs.NewTraceWriter(w, clock) }

// CombineObservers fans telemetry out to every non-nil observer (nil
// when none remain).
func CombineObservers(os ...Observer) Observer { return obs.Combine(os...) }
