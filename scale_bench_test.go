package tradeoff

import (
	"testing"

	"tradeoff/internal/experiments"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// The scale trajectory (BENCH_scale.json, gated by make bench-scale)
// tracks the engine on the 50k/200k-task instances the scaling roadmap
// targets: one paper-sized population stepping over datagen-synthesized
// traces one to two orders beyond the paper's 4000-task maximum. The
// names deliberately do not match the bench-step gate's
// BenchmarkStep|BenchmarkParetoFront|BenchmarkEvaluate regexps — these
// runs cost seconds per iteration and have their own baseline.
// allocs/op in the recorded baseline is the flat-steady-state evidence:
// after the warm-up generation the chunked arena stops growing.

func benchScaleStep(b *testing.B, tasks int) {
	if testing.Short() {
		b.Skipf("%d-task trace synthesis is too slow for -short", tasks)
	}
	ds, err := experiments.ScaleDataSet(tasks, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{PopulationSize: 100}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng.Step() // size the arena and caches before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkScaleStepPop100Tasks50k(b *testing.B)  { benchScaleStep(b, 50000) }
func BenchmarkScaleStepPop100Tasks200k(b *testing.B) { benchScaleStep(b, 200000) }

// BenchmarkScaleEpsilonArchiveInsert streams 200k tradeoff-curve points
// through a 100-slot ε-dominance archive — the million-point-front
// regime where the old exact archive's O(n) scan-and-prune per insert
// was the wall. Steady state is hint-hit or binary-search rejects with
// zero allocations.
func BenchmarkScaleEpsilonArchiveInsert(b *testing.B) {
	const n = 200000
	src := rng.New(5)
	pts := make([][2]float64, n)
	for i := range pts {
		u := src.Float64()
		pts[i] = [2]float64{u, u + 1e-3*src.Float64()}
	}
	sp := moea.UtilityEnergySpace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar := moea.NewEpsilonArchive(sp, []float64{1e-2, 1e-2}, 100)
		for _, p := range pts {
			ar.Add([]float64{p[0], p[1]}, nil)
		}
		if ar.Len() > 100 {
			b.Fatalf("archive overflowed: %d points", ar.Len())
		}
	}
}
