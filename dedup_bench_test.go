// Benchmarks for the deduplicating fitness-memoization layer (DESIGN.md
// §11): cached vs uncached generation cost in the regimes where the
// fingerprint cache matters. Convergence drives the hit rate — as the
// population collapses onto the Pareto front, crossover and low-rate
// mutation reproduce chromosomes the cache has already scored — so each
// pair below warms an engine past the exploratory phase before
// measuring. cmd/benchdiff gates these against BENCH_dedup.json
// (`make bench-dedup`); the names deliberately avoid the BENCH_GATE
// patterns so the two baselines stay independent.
package tradeoff_test

import (
	"testing"

	"tradeoff/internal/experiments"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

// dedupEngine builds a population-100 engine on the given data set with
// the cache capacity under test and runs warmup generations so duplicate
// chromosomes recur at the steady-state rate.
func dedupEngine(b *testing.B, dsNum, capacity, warmup int) *nsga2.Engine {
	b.Helper()
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := nsga2.Config{PopulationSize: 100, CacheCapacity: capacity}
	eng, err := nsga2.New(ds.Evaluator, cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng.Run(warmup)
	return eng
}

func benchDedup(b *testing.B, dsNum, capacity, warmup int) {
	eng := dedupEngine(b, dsNum, capacity, warmup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Converged population on the small trace: duplicates dominate the
// offspring stream, so the cached engine skips most simulations. The
// Uncached twin (CacheCapacity -1) is the control; the gap between the
// two is the whole value of memoization in this regime.
func BenchmarkDedupConvergedCached(b *testing.B)   { benchDedup(b, 1, 0, 25) }
func BenchmarkDedupConvergedUncached(b *testing.B) { benchDedup(b, 1, -1, 25) }

// Large 4000-task trace: each hit saves a full machine-major
// simulation, so this is where memoization pays most per hit even at a
// lower hit rate.
func BenchmarkDedupLargeCached(b *testing.B)   { benchDedup(b, 3, 0, 8) }
func BenchmarkDedupLargeUncached(b *testing.B) { benchDedup(b, 3, -1, 8) }

// Tiny cache on the converged population: the probe window thrashes, so
// this pins the floor — lookup+insert overhead with few hits must stay
// within the regression threshold of the uncached engine.
func BenchmarkDedupTinyCache(b *testing.B) { benchDedup(b, 1, 2, 25) }
