package tradeoff_test

import (
	"testing"

	"tradeoff"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 60, Window: 900}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    20,
		PopulationSize: 12,
		Seeds:          []tradeoff.Heuristic{tradeoff.MinEnergy, tradeoff.MaxUtility},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front through the public API")
	}
	region, err := tradeoff.AnalyzeUPE(res.Front, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if region.PeakUPE <= 0 {
		t.Fatalf("peak UPE = %v", region.PeakUPE)
	}
}

func TestPublicAPIEnlarge(t *testing.T) {
	sys, err := tradeoff.EnlargeSystem(tradeoff.RealSystem(), tradeoff.DefaultEnlargeConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumTaskTypes() != 30 || sys.NumMachines() != 30 {
		t.Fatalf("enlarged system dimensions wrong: %d task types, %d machines",
			sys.NumTaskTypes(), sys.NumMachines())
	}
}

func TestPublicAPIDVFS(t *testing.T) {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 30, Window: 300}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tradeoff.NewEvaluator(sys, trace)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := tradeoff.BuildSeed(tradeoff.MaxUtility, ev)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := tradeoff.NewDVFSEvaluator(ev, tradeoff.DefaultDVFSProfile())
	if err != nil {
		t.Fatal(err)
	}
	sweep := dv.SweepUniform(seed)
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d states", len(sweep))
	}
	if !(sweep[3].Energy < sweep[0].Energy) {
		t.Fatal("throttling did not save energy via public API")
	}
}

func TestPublicAPIBaselinesAndDropping(t *testing.T) {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 120, Window: 120}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tradeoff.NewEvaluator(sys, trace)
	if err != nil {
		t.Fatal(err)
	}
	a := tradeoff.BuildBaseline(tradeoff.Sufferage, ev)
	if err := ev.Validate(a); err != nil {
		t.Fatal(err)
	}
	before := ev.Evaluate(a)
	dropped, after := tradeoff.DropNegligible(ev, a, 0)
	if after.Energy > before.Energy {
		t.Fatal("dropping increased energy via public API")
	}
	if dropped.Len() != a.Len() {
		t.Fatal("dropped allocation has wrong length")
	}
	st, err := tradeoff.MeasureTrace(trace, sys)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTasks != 120 {
		t.Fatal("trace stats wrong")
	}
}

func TestPublicAPIQueries(t *testing.T) {
	front := []tradeoff.FrontPoint{
		{Utility: 10, Energy: 1},
		{Utility: 20, Energy: 2},
		{Utility: 25, Energy: 4},
	}
	if got := tradeoff.BestUnderBudget(front, 2.5); got != 1 {
		t.Fatalf("BestUnderBudget = %d", got)
	}
	if got := tradeoff.CheapestAtUtility(front, 15); got != 1 {
		t.Fatalf("CheapestAtUtility = %d", got)
	}
}

func TestFrontMonotonicityInvariant(t *testing.T) {
	// The paper's §IV-A observation, as an invariant: along a Pareto
	// front sorted by energy, utility is strictly increasing (a
	// well-structured allocation that uses more energy earns more
	// utility; equal-utility-higher-energy points would be dominated).
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 80, Window: 600}, 6)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{Generations: 60, PopulationSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Energy < res.Front[i-1].Energy {
			t.Fatal("front not energy-sorted")
		}
		if res.Front[i].Utility <= res.Front[i-1].Utility {
			t.Fatalf("utility not increasing along the front at %d: %v then %v",
				i, res.Front[i-1], res.Front[i])
		}
	}
}

func TestPublicAPIIslands(t *testing.T) {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 50, Window: 600}, 7)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    15,
		PopulationSize: 8,
		Islands:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty island front via public API")
	}
}
