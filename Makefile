GO ?= go

.PHONY: all build vet test race bench-smoke bench-record bench-diff check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each Step benchmark: catches benchmarks that no longer
# compile or panic, without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Step -benchtime 1x -benchmem .

# Re-measure the Step benchmarks and refresh the canonical baseline at
# the repo root (BENCH_step.json).
bench-record:
	$(GO) test -run '^$$' -bench 'BenchmarkStep|BenchmarkParetoFront' -benchtime 10x -benchmem . | tee /tmp/bench_step.txt
	$(GO) run ./cmd/benchdiff -record BENCH_step.json /tmp/bench_step.txt

# Compare the current tree against the recorded baseline; fails on >10%
# regression in ns/op or allocs/op.
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkStep|BenchmarkParetoFront' -benchtime 10x -benchmem . > /tmp/bench_new.txt
	$(GO) run ./cmd/benchdiff BENCH_step.json /tmp/bench_new.txt

check: build vet race bench-smoke
