GO ?= go

.PHONY: all build vet fmt lint test race bench-smoke bench-record bench-diff bench-evaluate bench-dedup bench-dedup-record bench-typed bench-typed-record bench-scale bench-scale-record trace-smoke check

# Benchmarks guarded by the >10% regression gate (cmd/benchdiff against
# BENCH_step.json): generation cost, front extraction, and the
# evaluation kernels.
BENCH_GATE = BenchmarkStep|BenchmarkParetoFront|BenchmarkEvaluate

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt gate: fails listing any file (fixtures included) that is not
# gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# detlint: the determinism/hot-path static analysis suite (internal/lint).
# Prints a per-analyzer findings summary and exits nonzero on any finding.
lint:
	$(GO) run ./cmd/detlint

# -shuffle=on randomizes test execution order each run, so accidental
# inter-test order dependence fails loudly instead of lurking.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# One iteration of each Step benchmark: catches benchmarks that no longer
# compile or panic, without paying for a full measurement run. -short
# keeps the smoke fast: the Step pattern also matches the scale-slice
# BenchmarkScaleStep benchmarks, whose 50k/200k-task trace synthesis
# alone costs tens of seconds and which self-skip under -short.
bench-smoke:
	$(GO) test -short -run '^$$' -bench Step -benchtime 1x -benchmem .

# Re-measure the gated benchmarks and refresh the canonical baseline at
# the repo root (BENCH_step.json).
bench-record:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime 500ms -count 3 -benchmem . | tee /tmp/bench_step.txt
	$(GO) run ./cmd/benchdiff -record BENCH_step.json /tmp/bench_step.txt

# Compare the current tree against the recorded baseline; fails on >10%
# regression in ns/op or allocs/op.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime 500ms -count 3 -benchmem . > /tmp/bench_new.txt
	$(GO) run ./cmd/benchdiff BENCH_step.json /tmp/bench_new.txt

# Evaluation-kernel slice of the regression gate: the task-major session
# sweep and the machine-major full evaluation on the large traces.
bench-evaluate:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate' -benchtime 500ms -count 3 -benchmem . > /tmp/bench_eval.txt
	$(GO) run ./cmd/benchdiff BENCH_step.json /tmp/bench_eval.txt

# Fitness-memoization slice of the regression gate (DESIGN.md §11):
# cached vs uncached generation cost in the regimes where the
# fingerprint cache matters, compared against BENCH_dedup.json. The
# looser threshold absorbs host-level variance on shared runners while
# still catching structural regressions (an allocation reintroduced on
# the insert path, a probe-window blowup).
bench-dedup:
	$(GO) test -run '^$$' -bench BenchmarkDedup -benchtime 300ms -count 3 -benchmem . > /tmp/bench_dedup.txt
	$(GO) run ./cmd/benchdiff -threshold 0.30 BENCH_dedup.json /tmp/bench_dedup.txt

# Typed-kernel slice of the regression gate (DESIGN.md §12): the
# kernel/machine-cache ablation twins plus the datagen-synthesized
# 50k-task generation, compared against BENCH_typed.json. benchdiff's
# -bench filter scopes the diff to this slice so the shared exit-code
# contract still applies; the threshold matches bench-dedup's for the
# same shared-runner-variance reason.
bench-typed:
	$(GO) test -run '^$$' -bench BenchmarkTypedStep -benchtime 300ms -count 3 -benchmem . > /tmp/bench_typed.txt
	$(GO) run ./cmd/benchdiff -threshold 0.30 -bench BenchmarkTypedStep BENCH_typed.json /tmp/bench_typed.txt

# Refresh the typed-kernel baseline after an intentional kernel change.
bench-typed-record:
	$(GO) test -run '^$$' -bench BenchmarkTypedStep -benchtime 300ms -count 3 -benchmem . | tee /tmp/bench_typed.txt
	$(GO) run ./cmd/benchdiff -bench BenchmarkTypedStep -record BENCH_typed.json /tmp/bench_typed.txt

# Refresh the dedup baseline after an intentional cache change.
bench-dedup-record:
	$(GO) test -run '^$$' -bench BenchmarkDedup -benchtime 300ms -count 3 -benchmem . | tee /tmp/bench_dedup.txt
	$(GO) run ./cmd/benchdiff -record BENCH_dedup.json /tmp/bench_dedup.txt

# Scale slice of the regression gate: paper-sized populations stepping
# over datagen-synthesized 50k/200k-task instances plus the 200k-point
# ε-archive insert stream, compared against BENCH_scale.json. Minutes of
# wall clock (trace synthesis dominates), so the slice is deliberately
# not part of make check — run it when touching the archive, the arena,
# or the evaluation path. -benchtime 1x with -count 2 bounds the cost
# while still letting benchdiff average; the 0.30 threshold matches the
# other long-trace slices.
bench-scale:
	$(GO) test -run '^$$' -bench BenchmarkScale -benchtime 1x -count 2 -benchmem . > /tmp/bench_scale.txt
	$(GO) run ./cmd/benchdiff -threshold 0.30 -bench BenchmarkScale BENCH_scale.json /tmp/bench_scale.txt

# Refresh the scale baseline after an intentional change to the archive,
# arena, or kernels.
bench-scale-record:
	$(GO) test -run '^$$' -bench BenchmarkScale -benchtime 1x -count 2 -benchmem . | tee /tmp/bench_scale.txt
	$(GO) run ./cmd/benchdiff -bench BenchmarkScale -record BENCH_scale.json /tmp/bench_scale.txt

# End-to-end telemetry smoke: run a short traced experiment through
# cmd/tradeoff, then validate the JSONL schema with cmd/tracecheck.
trace-smoke:
	$(GO) run ./cmd/tradeoff -generations 20 -pop 20 -tasks 60 -phase-profile -trace /tmp/trace_smoke.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/trace_smoke.jsonl
	$(GO) run ./cmd/tracestat -json /tmp/trace_smoke.jsonl > /dev/null

check: build vet fmt lint race bench-smoke bench-dedup bench-typed trace-smoke
