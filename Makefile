GO ?= go

.PHONY: all build vet fmt lint test race bench-smoke bench-record bench-diff bench-evaluate bench-dedup bench-dedup-record bench-typed bench-typed-record bench-scale bench-scale-record bench-dist bench-dist-record dist-smoke trace-smoke check

# Benchmarks guarded by the >10% regression gate (cmd/benchdiff against
# BENCH_step.json): generation cost, front extraction, and the
# evaluation kernels.
BENCH_GATE = BenchmarkStep|BenchmarkParetoFront|BenchmarkEvaluate

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt gate: fails listing any file (fixtures included) that is not
# gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# detlint: the determinism/hot-path static analysis suite (internal/lint).
# Prints a per-analyzer findings summary and exits nonzero on any finding.
lint:
	$(GO) run ./cmd/detlint

# -shuffle=on randomizes test execution order each run, so accidental
# inter-test order dependence fails loudly instead of lurking.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# One iteration of each Step benchmark: catches benchmarks that no longer
# compile or panic, without paying for a full measurement run. -short
# keeps the smoke fast: the Step pattern also matches the scale-slice
# BenchmarkScaleStep benchmarks, whose 50k/200k-task trace synthesis
# alone costs tens of seconds and which self-skip under -short.
bench-smoke:
	$(GO) test -short -run '^$$' -bench Step -benchtime 1x -benchmem .

# Re-measure the gated benchmarks and refresh the canonical baseline at
# the repo root (BENCH_step.json). -stat median collapses the -count 3
# repeats so one noisy run does not skew the baseline (or, below, fail
# the compare).
bench-record:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime 500ms -count 3 -benchmem . | tee /tmp/bench_step.txt
	$(GO) run ./cmd/benchdiff -stat median -record BENCH_step.json /tmp/bench_step.txt

# Compare the current tree against the recorded baseline; fails on >10%
# regression in ns/op or allocs/op.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime 500ms -count 3 -benchmem . > /tmp/bench_new.txt
	$(GO) run ./cmd/benchdiff -stat median BENCH_step.json /tmp/bench_new.txt

# Evaluation-kernel slice of the regression gate: the task-major session
# sweep and the machine-major full evaluation on the large traces.
bench-evaluate:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate' -benchtime 500ms -count 3 -benchmem . > /tmp/bench_eval.txt
	$(GO) run ./cmd/benchdiff -stat median BENCH_step.json /tmp/bench_eval.txt

# Fitness-memoization slice of the regression gate (DESIGN.md §11):
# cached vs uncached generation cost in the regimes where the
# fingerprint cache matters, compared against BENCH_dedup.json. The
# looser threshold absorbs host-level variance on shared runners while
# still catching structural regressions (an allocation reintroduced on
# the insert path, a probe-window blowup).
bench-dedup:
	$(GO) test -run '^$$' -bench BenchmarkDedup -benchtime 300ms -count 3 -benchmem . > /tmp/bench_dedup.txt
	$(GO) run ./cmd/benchdiff -stat median -threshold 0.30 BENCH_dedup.json /tmp/bench_dedup.txt

# Typed-kernel slice of the regression gate (DESIGN.md §12): the
# kernel/machine-cache ablation twins plus the datagen-synthesized
# 50k-task generation, compared against BENCH_typed.json. benchdiff's
# -bench filter scopes the diff to this slice so the shared exit-code
# contract still applies; the threshold matches bench-dedup's for the
# same shared-runner-variance reason.
bench-typed:
	$(GO) test -run '^$$' -bench BenchmarkTypedStep -benchtime 300ms -count 3 -benchmem . > /tmp/bench_typed.txt
	$(GO) run ./cmd/benchdiff -stat median -threshold 0.30 -bench BenchmarkTypedStep BENCH_typed.json /tmp/bench_typed.txt

# Refresh the typed-kernel baseline after an intentional kernel change.
bench-typed-record:
	$(GO) test -run '^$$' -bench BenchmarkTypedStep -benchtime 300ms -count 3 -benchmem . | tee /tmp/bench_typed.txt
	$(GO) run ./cmd/benchdiff -bench BenchmarkTypedStep -record BENCH_typed.json /tmp/bench_typed.txt

# Refresh the dedup baseline after an intentional cache change.
bench-dedup-record:
	$(GO) test -run '^$$' -bench BenchmarkDedup -benchtime 300ms -count 3 -benchmem . | tee /tmp/bench_dedup.txt
	$(GO) run ./cmd/benchdiff -record BENCH_dedup.json /tmp/bench_dedup.txt

# Scale slice of the regression gate: paper-sized populations stepping
# over datagen-synthesized 50k/200k-task instances plus the 200k-point
# ε-archive insert stream, compared against BENCH_scale.json. Minutes of
# wall clock (trace synthesis dominates), so the slice is deliberately
# not part of make check — run it when touching the archive, the arena,
# or the evaluation path. -benchtime 1x with -count 2 bounds the cost
# while still letting benchdiff average; the 0.30 threshold matches the
# other long-trace slices.
bench-scale:
	$(GO) test -run '^$$' -bench BenchmarkScale -benchtime 1x -count 2 -benchmem . > /tmp/bench_scale.txt
	$(GO) run ./cmd/benchdiff -stat median -threshold 0.30 -bench BenchmarkScale BENCH_scale.json /tmp/bench_scale.txt

# Refresh the scale baseline after an intentional change to the archive,
# arena, or kernels.
bench-scale-record:
	$(GO) test -run '^$$' -bench BenchmarkScale -benchtime 1x -count 2 -benchmem . | tee /tmp/bench_scale.txt
	$(GO) run ./cmd/benchdiff -bench BenchmarkScale -record BENCH_scale.json /tmp/bench_scale.txt

# Distributed-islands slice of the regression gate (DESIGN.md §15): the
# wire codec hot paths, full coordinator round trips over in-process
# pipes against the single-process async baseline, and the streaming
# ε-archive's spill/merge pipeline, compared against BENCH_dist.json.
# The recorded baseline is honest about its host: on a single core the
# worker-count ladder measures scheduling and wire overhead, not
# speedup — on 4+ cores re-record and expect the 4-worker run to beat
# the in-process baseline.
bench-dist:
	$(GO) test -run '^$$' -bench BenchmarkDist -benchtime 300ms -count 3 -benchmem ./internal/dist > /tmp/bench_dist.txt
	$(GO) test -run '^$$' -bench BenchmarkStreamingArchive -benchtime 300ms -count 3 -benchmem ./internal/moea >> /tmp/bench_dist.txt
	$(GO) run ./cmd/benchdiff -stat median -threshold 0.30 BENCH_dist.json /tmp/bench_dist.txt

# Refresh the distributed baseline after an intentional wire, scheduler,
# or archive change.
bench-dist-record:
	$(GO) test -run '^$$' -bench BenchmarkDist -benchtime 300ms -count 3 -benchmem ./internal/dist | tee /tmp/bench_dist.txt
	$(GO) test -run '^$$' -bench BenchmarkStreamingArchive -benchtime 300ms -count 3 -benchmem ./internal/moea | tee -a /tmp/bench_dist.txt
	$(GO) run ./cmd/benchdiff -stat median -record BENCH_dist.json /tmp/bench_dist.txt

# Distributed end-to-end smoke: the same short run once in-process and
# once across two worker processes (with -race on the binary), then a
# bit-for-bit diff of the CSV fronts. Worker traces land next to the
# parent trace as /tmp/dist_smoke.jsonl.w0/.w1 for post-mortems.
dist-smoke:
	$(GO) build -race -o /tmp/tradeoff_dist_smoke ./cmd/tradeoff
	/tmp/tradeoff_dist_smoke -dataset 1 -tasks 60 -generations 20 -pop 16 -islands 4 -migration-interval 5 -async -csv /tmp/dist_smoke_inproc.csv > /dev/null
	/tmp/tradeoff_dist_smoke -dataset 1 -tasks 60 -generations 20 -pop 16 -islands 4 -migration-interval 5 -async -distribute 2 -trace /tmp/dist_smoke.jsonl -csv /tmp/dist_smoke_dist.csv > /dev/null
	cmp /tmp/dist_smoke_inproc.csv /tmp/dist_smoke_dist.csv
	$(GO) run ./cmd/tracestat /tmp/dist_smoke.jsonl.w0 /tmp/dist_smoke.jsonl.w1 > /dev/null

# End-to-end telemetry smoke: run a short traced experiment through
# cmd/tradeoff, then validate the JSONL schema with cmd/tracecheck.
trace-smoke:
	$(GO) run ./cmd/tradeoff -generations 20 -pop 20 -tasks 60 -phase-profile -trace /tmp/trace_smoke.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/trace_smoke.jsonl
	$(GO) run ./cmd/tracestat -json /tmp/trace_smoke.jsonl > /dev/null

check: build vet fmt lint race bench-smoke bench-dedup bench-typed bench-dist dist-smoke trace-smoke
