// Benchmarks regenerating every table and figure of the paper (scaled to
// bench-friendly iteration counts; EXPERIMENTS.md records full runs), plus
// ablations of the design choices DESIGN.md calls out: ranking rule,
// crossover repair strategy, evaluation parallelism, and population size.
package tradeoff_test

import (
	"io"
	"testing"
	"time"

	"tradeoff/internal/data"
	"tradeoff/internal/datagen"
	"tradeoff/internal/experiments"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/obs"
	"tradeoff/internal/rng"
	"tradeoff/internal/sched"
	"tradeoff/internal/workload"
)

// benchCfg keeps figure benches to a few hundred milliseconds per op.
var benchCfg = experiments.RunConfig{
	PopulationSize: 40,
	Checkpoints:    []int{5, 25},
	Seed:           1,
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteTableI(io.Discard)
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteTableII(io.Discard)
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteTableIII(io.Discard)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteFigure1(io.Discard)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteFigure2(io.Discard)
	}
}

func benchParetoFigure(b *testing.B, dsNum int) {
	b.Helper()
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.Seed = uint64(i + 1)
		res, err := experiments.RunParetoFigure(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteSeries(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the data set 1 Pareto-front study.
func BenchmarkFigure3(b *testing.B) { benchParetoFigure(b, 1) }

// BenchmarkFigure4 regenerates the data set 2 Pareto-front study.
func BenchmarkFigure4(b *testing.B) { benchParetoFigure(b, 2) }

// BenchmarkFigure6 regenerates the data set 3 Pareto-front study.
func BenchmarkFigure6(b *testing.B) { benchParetoFigure(b, 3) }

// BenchmarkFigure5 regenerates the utility-per-energy region analysis.
func BenchmarkFigure5(b *testing.B) {
	ds, err := experiments.ByNumber(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.Seed = uint64(i + 1)
		res, err := experiments.RunFigure5(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.WriteFigure5(io.Discard)
	}
}

// --- Ablations -----------------------------------------------------------

func ablationEngine(b *testing.B, mutate func(*nsga2.Config)) *nsga2.Engine {
	b.Helper()
	ds, err := experiments.DataSet1(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := nsga2.Config{PopulationSize: 100}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := nsga2.New(ds.Evaluator, cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// Ranking rule: Deb fronts (default) vs the paper's literal
// dominance-count ranking.
func BenchmarkAblationRankingDebFronts(b *testing.B) {
	eng := ablationEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkAblationRankingDominanceCount(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.Ranking = nsga2.DominanceCount })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Crossover repair: order-preserving re-rank vs order-destroying shuffle.
func BenchmarkAblationRepairRerank(b *testing.B) {
	eng := ablationEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkAblationRepairShuffle(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.Repair = nsga2.ShuffleRepair })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Evaluation parallelism: serial vs GOMAXPROCS worker pool.
func BenchmarkAblationEvalSerial(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.Workers = 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkAblationEvalParallel(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.Workers = 0 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Population size scaling.
func BenchmarkAblationPop50(b *testing.B)  { benchPop(b, 50) }
func BenchmarkAblationPop100(b *testing.B) { benchPop(b, 100) }
func BenchmarkAblationPop200(b *testing.B) { benchPop(b, 200) }

func benchPop(b *testing.B, n int) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.PopulationSize = n })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Steady-state generation cost and allocation profile across population
// scales. The generation loop recycles chromosome and objective buffers
// through the engine arena, so allocs/op stays flat (goroutine fan-out
// overhead only) as the population grows. cmd/benchdiff compares two
// runs of these and fails on regression.
func BenchmarkStepPop100(b *testing.B)  { benchStep(b, 100) }
func BenchmarkStepPop200(b *testing.B)  { benchStep(b, 200) }
func BenchmarkStepPop1000(b *testing.B) { benchStep(b, 1000) }

func benchStep(b *testing.B, n int) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.PopulationSize = n })
	eng.Step() // size the arena and scratch before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Steady-state generation cost with the full telemetry chain attached:
// metrics observer plus JSONL trace writer (to io.Discard) plus the
// phase profiler on a live clock. All record paths recycle their
// buffers and the profiler is fixed-slot atomic adds, so the observed
// loop stays allocation-free too; the delta against
// BenchmarkStepPop100 is the whole per-generation price of telemetry.
func BenchmarkStepObserved(b *testing.B) {
	eng := ablationEngine(b, nil)
	reg := obs.NewRegistry()
	eng.SetObserver(obs.Combine(obs.NewMetrics(reg), obs.NewTraceWriter(io.Discard, nil)))
	eng.SetPhaseTimer(obs.NewPhaseTimer(func() int64 { return time.Now().UnixNano() }))
	eng.Step() // size the arena, scratch, and telemetry buffers before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Steady-state generation cost with a flight recorder in the observer
// chain (alongside the metrics and trace members of
// BenchmarkStepObserved). The ring deep-copies every event into
// slot-owned storage, so after the slots grow to the working set the
// wrap-around steady state recycles rather than reallocates. Named
// outside the benchdiff gate: the recorder is an opt-in diagnostic,
// not part of the pinned telemetry baseline.
func BenchmarkObservedWithFlightRecorder(b *testing.B) {
	eng := ablationEngine(b, nil)
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(64, func() int64 { return time.Now().UnixNano() })
	eng.SetObserver(obs.Combine(obs.NewMetrics(reg), obs.NewTraceWriter(io.Discard, nil), fr))
	for i := 0; i < 65; i++ {
		eng.Step() // grow the ring slots past one full wrap before measuring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Generation cost on the large traces, where per-offspring evaluation
// dominates and the machine-major kernel with delta inheritance pays
// off.
func BenchmarkStepPop100Tasks1000(b *testing.B) { benchStepLarge(b, 2) }
func BenchmarkStepPop100Tasks4000(b *testing.B) { benchStepLarge(b, 3) }

func benchStepLarge(b *testing.B, dsNum int) {
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := nsga2.New(ds.Evaluator, nsga2.Config{PopulationSize: 100}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng.Step() // size the arena and scratch before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Typed-kernel and machine-cache ablation twins on the 4000-task trace:
// the same generation loop as BenchmarkStepPop100Tasks4000 with each
// level toggled independently, so benchdiff can attribute a regression
// to the kernel or to the bucket cache rather than to the step as a
// whole. All four configurations produce bit-identical populations —
// only the speed may differ.
func BenchmarkTypedStepKernelTyped(b *testing.B) {
	benchStepConfigured(b, 3, func(c *nsga2.Config) { c.Kernel = sched.KernelTyped })
}

func BenchmarkTypedStepKernelScalar(b *testing.B) {
	benchStepConfigured(b, 3, func(c *nsga2.Config) { c.Kernel = sched.KernelScalar })
}

func BenchmarkTypedStepMachineCacheOn(b *testing.B) {
	benchStepConfigured(b, 3, func(c *nsga2.Config) { c.MachineCacheCapacity = 0 })
}

func BenchmarkTypedStepMachineCacheOff(b *testing.B) {
	benchStepConfigured(b, 3, func(c *nsga2.Config) { c.MachineCacheCapacity = -1 })
}

// BenchmarkTypedStep50kTasks measures one generation over a
// datagen-synthesized 50 000-task trace on an enlarged heterogeneous
// system — the scale where the typed kernel's run-length compression
// and the machine-bucket cache have long queues to work with, unlike
// the paper traces' short ones. Skipped under -short: building the
// trace and one warm-up generation cost seconds.
func BenchmarkTypedStep50kTasks(b *testing.B) {
	if testing.Short() {
		b.Skip("50k-task trace synthesis is too slow for -short")
	}
	src := rng.New(1)
	sys, err := datagen.Enlarge(data.RealSystem(), datagen.Default(), src)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(sys, workload.GenConfig{NumTasks: 50000, Window: 40000}, src)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := sched.NewEvaluator(sys, tr)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := nsga2.New(ev, nsga2.Config{PopulationSize: 20}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng.Step() // size the arena and scratch before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func benchStepConfigured(b *testing.B, dsNum int, mod func(*nsga2.Config)) {
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := nsga2.Config{PopulationSize: 100}
	mod(&cfg)
	eng, err := nsga2.New(ds.Evaluator, cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng.Step() // size the arena and scratch before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Pareto-front extraction cost (rank-1 copy + sort), measured on a
// converged population where the front is large.
func BenchmarkParetoFront(b *testing.B) {
	eng := ablationEngine(b, nil)
	eng.Run(25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.ParetoFront()) == 0 {
			b.Fatal("empty front")
		}
	}
}

// Seed construction cost relative to one NSGA-II generation (the paper's
// claim that greedy heuristics are negligible).
func BenchmarkSeedConstructionAll(b *testing.B) {
	ds, err := experiments.DataSet1(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range experiments.Variants() {
			if v.Seed == nil {
				continue
			}
			if _, err := v.Seed.Build(ds.Evaluator); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// End-to-end evaluation throughput across the three data-set scales
// (task-major Session sweep, the kernel external analysis code uses).
func BenchmarkEvaluateDataSet1(b *testing.B) { benchEvaluate(b, 1) }
func BenchmarkEvaluateDataSet2(b *testing.B) { benchEvaluate(b, 2) }
func BenchmarkEvaluateDataSet3(b *testing.B) { benchEvaluate(b, 3) }

func benchEvaluate(b *testing.B, dsNum int) {
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	sess := ds.Evaluator.NewSession()
	a := ds.Evaluator.RandomAllocation(rng.New(2))
	var sink sched.Evaluation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = sess.Evaluate(a)
	}
	_ = sink
}

// Machine-major full-evaluation kernel on the 1000- and 4000-task
// traces: the per-offspring simulation cost inside the NSGA-II engine
// (compiled TUF table + transposed execution-time/energy rows).
func BenchmarkEvaluate1000(b *testing.B) { benchEvaluateFull(b, 2) }
func BenchmarkEvaluate4000(b *testing.B) { benchEvaluateFull(b, 3) }

func benchEvaluateFull(b *testing.B, dsNum int) {
	ds, err := experiments.ByNumber(dsNum, 1)
	if err != nil {
		b.Fatal(err)
	}
	dsess := ds.Evaluator.NewDeltaSession()
	contribs := ds.Evaluator.NewContribs()
	a := ds.Evaluator.RandomAllocation(rng.New(2))
	var sink sched.Evaluation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = dsess.EvaluateFull(a, contribs)
	}
	_ = sink
}

// Parent selection: the paper's uniform-random parents vs canonical
// NSGA-II binary tournament.
func BenchmarkAblationSelectionUniform(b *testing.B) {
	eng := ablationEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

func BenchmarkAblationSelectionTournament(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.Selection = nsga2.TournamentSelection })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// Island model vs single population at equal total budget.
func BenchmarkIslands4x25(b *testing.B) {
	ds, err := experiments.DataSet1(1)
	if err != nil {
		b.Fatal(err)
	}
	is, err := nsga2.NewIslands(ds.Evaluator, nsga2.IslandConfig{
		Islands: 4,
		Engine:  nsga2.Config{PopulationSize: 26, Workers: 1},
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is.Step()
	}
}

func BenchmarkSinglePop104(b *testing.B) {
	eng := ablationEngine(b, func(c *nsga2.Config) { c.PopulationSize = 104; c.Workers = 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
