// Seeding study: run one NSGA-II population per seeding heuristic (plus
// an all-random baseline) on the same instance and compare the fronts —
// the paper's §VI observation that intelligently seeded populations find
// solutions that dominate those of random populations within a limited
// number of iterations.
package main

import (
	"fmt"
	"log"

	"tradeoff"
	"tradeoff/internal/core"
)

func main() {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 250, Window: 900}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}

	// Few generations on purpose: the seeding advantage is largest early.
	results, cmp, err := fw.CompareSeeding(core.Options{
		Generations:    200,
		PopulationSize: 100,
		RandomSeed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-population front summary after 200 generations:")
	fmt.Printf("  %-24s %8s %14s %14s %12s\n", "population", "front", "min E (MJ)", "max utility", "hypervolume")
	for i, name := range cmp.Names {
		r := results[name]
		minE, maxU := r.Front[0].Energy, 0.0
		for _, p := range r.Front {
			if p.Energy < minE {
				minE = p.Energy
			}
			if p.Utility > maxU {
				maxU = p.Utility
			}
		}
		fmt.Printf("  %-24s %8d %14.3f %14.1f %12.4g\n", name, len(r.Front), minE/1e6, maxU, cmp.Hypervolume[i])
	}

	fmt.Println("\ncoverage matrix C(row, col) — fraction of col's front dominated by row:")
	fmt.Printf("  %-24s", "")
	for _, n := range cmp.Names {
		fmt.Printf(" %10.10s", n)
	}
	fmt.Println()
	for i, row := range cmp.Coverage {
		fmt.Printf("  %-24s", cmp.Names[i])
		for _, v := range row {
			fmt.Printf(" %10.2f", v)
		}
		fmt.Println()
	}

	// The headline claim: every seeded population's front should cover a
	// substantial share of the random population's front.
	randIdx := -1
	for i, n := range cmp.Names {
		if n == "random" {
			randIdx = i
		}
	}
	fmt.Println("\nseeded vs random:")
	for i, n := range cmp.Names {
		if i == randIdx {
			continue
		}
		fmt.Printf("  %-24s dominates %.0f%% of the random front\n", n, 100*cmp.Coverage[i][randIdx])
	}
}
