// Knee analysis (the paper's Fig. 5): evolve a front, locate the maximum
// utility-per-energy region, and show the marginal utility of each extra
// megajoule — large to the left of the region, negligible to the right.
package main

import (
	"fmt"
	"log"
	"math"

	"tradeoff"
	"tradeoff/internal/analysis"
)

func main() {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 250, Window: 900}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    1200,
		PopulationSize: 100,
		Seeds:          []tradeoff.Heuristic{tradeoff.MaxUtilityPerEnergy},
	})
	if err != nil {
		log.Fatal(err)
	}

	reg := res.Region
	fmt.Printf("front: %d solutions, %.3f-%.3f MJ\n",
		len(reg.Points), reg.Points[0].Energy/1e6, reg.Points[len(reg.Points)-1].Energy/1e6)
	fmt.Printf("max utility-per-energy: %.2f utility/MJ at %.3f MJ (solution %d)\n",
		reg.PeakUPE*1e6, reg.Peak.Energy/1e6, reg.PeakIndex)
	fmt.Printf("efficient region: solutions %d..%d (UPE within 5%% of the peak)\n\n", reg.Lo, reg.Hi)

	rates := analysis.MarginalRates(reg.Points)
	fmt.Printf("%-4s %-12s %-10s %-20s %s\n", "#", "energy (MJ)", "utility", "marginal (U per MJ)", "")
	for i, p := range reg.Points {
		rate := ""
		if i > 0 && !math.IsInf(rates[i-1], 0) {
			rate = fmt.Sprintf("%.2f", rates[i-1]*1e6)
		}
		zone := ""
		switch {
		case i == reg.PeakIndex:
			zone = "<- peak"
		case i < reg.Lo:
			zone = "(cheap utility here)"
		case i > reg.Hi:
			zone = "(diminishing returns)"
		}
		fmt.Printf("%-4d %-12.3f %-10.1f %-20s %s\n", i, p.Energy/1e6, p.Utility, rate, zone)
	}

	fmt.Println("\nreading the curve:")
	fmt.Println("  left of the region:  relatively large utility gains per extra MJ")
	fmt.Println("  right of the region: relatively large energy spent for small utility gains")
}
