// Island-model NSGA-II: several populations evolve in parallel and
// periodically exchange elites around a ring — coarse-grained parallelism
// plus diversity preservation on the enlarged (data set 2 scale)
// environment. The merged front is compared against a single-population
// run with the same total evaluation budget.
package main

import (
	"fmt"
	"log"

	"tradeoff"
	"tradeoff/internal/analysis"
	"tradeoff/internal/moea"
	"tradeoff/internal/nsga2"
	"tradeoff/internal/rng"
)

func main() {
	sys, err := tradeoff.EnlargeSystem(tradeoff.RealSystem(), tradeoff.DefaultEnlargeConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 500, Window: 900}, 5)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := tradeoff.NewEvaluator(sys, trace)
	if err != nil {
		log.Fatal(err)
	}
	seeds := []*tradeoff.Allocation{}
	for _, h := range []tradeoff.Heuristic{tradeoff.MinEnergy, tradeoff.MinMin, tradeoff.MaxUtilityPerEnergy} {
		a, err := tradeoff.BuildSeed(h, ev)
		if err != nil {
			log.Fatal(err)
		}
		seeds = append(seeds, a)
	}

	const generations = 400

	// Single population of 120.
	single, err := nsga2.New(ev, nsga2.Config{PopulationSize: 120, Seeds: seeds}, rng.New(9))
	if err != nil {
		log.Fatal(err)
	}
	single.Run(generations)
	singleFront := analysis.FromObjectives(single.FrontPoints())

	// Four islands of 30 (same total budget), ring migration every 20
	// generations.
	islands, err := nsga2.NewIslands(ev, nsga2.IslandConfig{
		Islands:           4,
		MigrationInterval: 20,
		Migrants:          2,
		Engine:            nsga2.Config{PopulationSize: 30, Seeds: seeds},
	}, rng.New(9))
	if err != nil {
		log.Fatal(err)
	}
	islands.Run(generations)
	islandFront := analysis.FromObjectives(islands.FrontPoints())

	sp := moea.UtilityEnergySpace()
	ref := sp.ReferenceFrom(0.05, analysis.ToObjectives(singleFront), analysis.ToObjectives(islandFront))
	fmt.Printf("single population (120): front %d, hypervolume %.4g\n",
		len(singleFront), sp.Hypervolume2D(analysis.ToObjectives(singleFront), ref))
	fmt.Printf("4 islands x 30:          front %d, hypervolume %.4g\n",
		len(islandFront), sp.Hypervolume2D(analysis.ToObjectives(islandFront), ref))
	merged := analysis.MergeFronts(singleFront, islandFront)
	fmt.Printf("merged best-known front: %d points spanning %.2f-%.2f MJ\n",
		len(merged), merged[0].Energy/1e6, merged[len(merged)-1].Energy/1e6)
}
