// Datacenter capacity planning: enlarge the real benchmark data into a
// 30-machine heterogeneous suite (the paper's data set 2 environment),
// simulate a 1000-task trace, and answer an operations question: "what is
// the most utility we can earn under an energy budget?" for a ladder of
// budgets.
package main

import (
	"fmt"
	"log"

	"tradeoff"
)

func main() {
	// Build the enlarged environment with the paper's Table III machine
	// counts: 4 special-purpose machine types (10x faster on 2-3 task
	// types each) plus 26 general-purpose machines over 9 CPU models.
	sys, err := tradeoff.EnlargeSystem(tradeoff.RealSystem(), tradeoff.DefaultEnlargeConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("environment: %d machines / %d machine types / %d task types\n",
		sys.NumMachines(), sys.NumMachineTypes(), sys.NumTaskTypes())

	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{
		NumTasks: 1000,
		Window:   15 * 60,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    800,
		PopulationSize: 100,
		Seeds: []tradeoff.Heuristic{
			tradeoff.MinEnergy, tradeoff.MinMin, tradeoff.MaxUtilityPerEnergy,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	minE, maxE := res.Front[0].Energy, res.Front[len(res.Front)-1].Energy
	fmt.Printf("\nfront spans %.2f-%.2f MJ; utility %.0f-%.0f\n",
		minE/1e6, maxE/1e6, res.Front[0].Utility, res.Front[len(res.Front)-1].Utility)

	// Capacity planning: best achievable utility under each budget.
	fmt.Printf("\n%-18s %-14s %s\n", "energy budget", "best utility", "allocation")
	for _, frac := range []float64{1.0, 1.05, 1.15, 1.3, 1.6, 2.0} {
		budget := minE * frac
		bestIdx := -1
		for i, p := range res.Front {
			if p.Energy <= budget && (bestIdx == -1 || p.Utility > res.Front[bestIdx].Utility) {
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			continue
		}
		p := res.Front[bestIdx]
		// The allocation behind the chosen point is directly deployable:
		// res.Allocations[bestIdx] maps every task to a machine.
		busiest := busiestMachine(res.Allocations[bestIdx], sys.NumMachines())
		fmt.Printf("%-18s %-14.0f front[%d], busiest machine %d (%d tasks)\n",
			fmt.Sprintf("%.2f MJ", budget/1e6), p.Utility, bestIdx, busiest.machine, busiest.count)
	}

	fmt.Printf("\nmost efficient operating point: %.2f MJ -> %.0f utility (%.2f utility/MJ)\n",
		res.Region.Peak.Energy/1e6, res.Region.Peak.Utility, res.Region.PeakUPE*1e6)
}

type load struct {
	machine, count int
}

func busiestMachine(a *tradeoff.Allocation, numMachines int) load {
	counts := make([]int, numMachines)
	for _, m := range a.Machine {
		if m >= 0 {
			counts[m]++
		}
	}
	best := load{}
	for m, c := range counts {
		if c > best.count {
			best = load{machine: m, count: c}
		}
	}
	return best
}
