// Quickstart: evolve a Pareto front of (utility, energy) for the real
// benchmark environment and print the trade-off curve with its most
// efficient region.
package main

import (
	"fmt"
	"log"

	"tradeoff"
)

func main() {
	// The embedded 9-machine × 5-task benchmark environment.
	sys := tradeoff.RealSystem()

	// A trace of 250 tasks arriving over 15 minutes (the paper's data
	// set 1 workload).
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{
		NumTasks: 250,
		Window:   15 * 60,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}

	// Evolve a population seeded with the min-energy and max-utility
	// greedy heuristics.
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    1500,
		PopulationSize: 100,
		Seeds:          []tradeoff.Heuristic{tradeoff.MinEnergy, tradeoff.MaxUtility},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Pareto front (%d allocations) after %d generations:\n\n", len(res.Front), res.Generations)
	fmt.Printf("%-14s %-12s %s\n", "energy (MJ)", "utility", "")
	for i, p := range res.Front {
		note := ""
		if i == res.Region.PeakIndex {
			note = "<- most utility per joule"
		}
		fmt.Printf("%-14.3f %-12.1f %s\n", p.Energy/1e6, p.Utility, note)
	}
	fmt.Printf("\nA system administrator reading this curve can pick any point:\n")
	lo, hi := res.Front[0], res.Front[len(res.Front)-1]
	fmt.Printf("  frugal end:   %.3f MJ for %.1f utility\n", lo.Energy/1e6, lo.Utility)
	fmt.Printf("  spendy end:   %.3f MJ for %.1f utility\n", hi.Energy/1e6, hi.Utility)
	fmt.Printf("  efficient:    %.3f MJ for %.1f utility (%.2f utility/MJ)\n",
		res.Region.Peak.Energy/1e6, res.Region.Peak.Utility, res.Region.PeakUPE*1e6)
}
