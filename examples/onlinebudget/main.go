// Offline-informs-online (the paper's §VI workflow): run the offline
// bi-objective analysis over a recorded trace, read the energy of the
// most efficient solution off the Pareto front, and hand it as an energy
// budget to an online dynamic scheduler that sees tasks only as they
// arrive.
package main

import (
	"fmt"
	"log"

	"tradeoff"
	"tradeoff/internal/online"
)

func main() {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 250, Window: 900}, 11)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}

	// Offline post-mortem: evolve the front, locate the efficient region.
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    800,
		PopulationSize: 100,
		Seeds: []tradeoff.Heuristic{
			tradeoff.MinEnergy, tradeoff.MaxUtility, tradeoff.MaxUtilityPerEnergy, tradeoff.MinMin,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	budget := res.Region.Peak.Energy
	fmt.Printf("offline analysis: %d-point front, efficient region at %.3f MJ (%.1f utility)\n",
		len(res.Front), budget/1e6, res.Region.Peak.Utility)

	// Online day-of: the same trace arrives task by task.
	fmt.Printf("\n%-22s %12s %10s %8s\n", "online policy", "energy (MJ)", "utility", "dropped")
	policies := []online.Policy{
		online.GreedyEnergy{},
		online.GreedyUtility{},
		online.GreedyUPE{},
		online.Budgeted{Budget: budget, Window: trace.Window, DropZeroUtility: true},
	}
	for _, p := range policies {
		r, err := online.Simulate(fw.Evaluator(), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.3f %10.1f %8d\n",
			p.Name(), r.Evaluation.Energy/1e6, r.Evaluation.Utility, r.Dropped)
	}
	fmt.Println("\nthe budgeted policy spends at most the efficient-region energy the")
	fmt.Println("offline analysis identified, dropping work that would earn nothing.")
}
