// DVFS extension (the paper's future work): take allocations from an
// NSGA-II front and refine them with per-task P-state selection, showing
// how frequency scaling extends the reachable utility/energy trade-off
// beyond machine assignment alone.
package main

import (
	"fmt"
	"log"

	"tradeoff"
)

func main() {
	sys := tradeoff.RealSystem()
	trace, err := tradeoff.GenerateTrace(sys, tradeoff.TraceConfig{NumTasks: 150, Window: 900}, 9)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := tradeoff.NewFramework(sys, trace)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Optimize(tradeoff.Options{
		Generations:    500,
		PopulationSize: 60,
		Seeds:          []tradeoff.Heuristic{tradeoff.MaxUtility, tradeoff.MinEnergy},
	})
	if err != nil {
		log.Fatal(err)
	}

	dv, err := tradeoff.NewDVFSEvaluator(fw.Evaluator(), tradeoff.DefaultDVFSProfile())
	if err != nil {
		log.Fatal(err)
	}

	// Pick the highest-utility allocation on the front and sweep the
	// uniform P-states: the raw DVFS trade-off of one fixed assignment.
	top := res.Allocations[len(res.Allocations)-1]
	fmt.Println("uniform P-state sweep of the highest-utility allocation:")
	fmt.Printf("  %-8s %-14s %-12s %s\n", "state", "energy (MJ)", "utility", "makespan (s)")
	for i, ev := range dv.SweepUniform(top) {
		fmt.Printf("  P%-7d %-14.3f %-12.1f %.0f\n", i, ev.Energy/1e6, ev.Utility, ev.Makespan)
	}

	// Per-task optimization across a λ ladder extends the front: some
	// tasks throttle (their utility had already decayed), others stay at
	// full speed.
	fmt.Println("\nper-task DVFS refinement (λ = energy weight):")
	fmt.Printf("  %-12s %-14s %-12s\n", "lambda", "energy (MJ)", "utility")
	lambdas := []float64{0, 2e-5, 5e-5, 1e-4, 3e-4, 1e-3}
	for _, l := range lambdas {
		_, ev := dv.OptimizeWeighted(top, l, 2)
		fmt.Printf("  %-12.0e %-14.3f %-12.1f\n", l, ev.Energy/1e6, ev.Utility)
	}

	base := fw.Evaluator().Evaluate(top)
	ext := dv.ExtendFront(top, lambdas, 2)
	fmt.Printf("\nfixed assignment at full speed: %.3f MJ -> %.1f utility\n", base.Energy/1e6, base.Utility)
	fmt.Printf("DVFS-extended trade-off points from the same assignment: %d\n", len(ext))
	for _, ev := range ext {
		fmt.Printf("  %.3f MJ -> %.1f utility\n", ev.Energy/1e6, ev.Utility)
	}
}
